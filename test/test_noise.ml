(* Tests for the noise-hardened query layer (§4.3/§7.1): adaptive
   majority voting, bounded retry around nondeterminism, drift detection
   and threshold recalibration, the self-healing membership cache, and the
   stats accounting under voting. *)

module M = Cq_hwsim.Machine
module CM = Cq_hwsim.Cpu_model
module FE = Cq_cachequery.Frontend
module BE = Cq_cachequery.Backend
module B = Cq_cache.Block
module O = Cq_cache.Oracle
module Polca = Cq_core.Polca

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let backend_for ?(noise = M.quiet_noise) model level set =
  let machine = M.create ~noise model in
  let be = BE.create machine { BE.level; slice = 0; set } in
  ignore (BE.calibrate be);
  be

let report_of run =
  match run.Cq_core.Hardware.outcome with
  | Cq_core.Hardware.Learned { report; _ } -> report
  | Cq_core.Hardware.Partial { failure; _ } ->
      Alcotest.fail
        (Fmt.str "learn_set partial: %a" Cq_core.Learn.pp_failure failure)
  | Cq_core.Hardware.Failed { reason; _ } ->
      Alcotest.fail ("learn_set failed: " ^ reason)

(* --- Flagship: Haswell L1 (PLRU-8) under default noise ------------------- *)

(* Learning under the default noise model with adaptive voting must
   produce the same automaton as a noiseless run — the paper's Table 4
   workflow survives realistic measurement noise. *)
let test_haswell_l1_noise_matches_quiet () =
  let quiet =
    Cq_core.Hardware.learn_set ~check_hits:false
      (M.create ~noise:M.quiet_noise CM.haswell)
      CM.L1
  in
  let noisy =
    Cq_core.Hardware.learn_set ~check_hits:false
      ~voting:(FE.Adaptive { max = 5 })
      ~retries:3
      (M.create ~noise:M.default_noise CM.haswell)
      CM.L1
  in
  let q = report_of quiet and n = report_of noisy in
  Alcotest.(check int) "same state count" q.Cq_core.Learn.states
    n.Cq_core.Learn.states;
  Alcotest.(check bool) "same automaton as the quiet run" true
    (Cq_automata.Mealy.equivalent q.Cq_core.Learn.machine
       n.Cq_core.Learn.machine);
  Alcotest.(check bool) "vote re-measurements recorded" true
    (n.Cq_core.Learn.vote_runs > 0);
  Alcotest.(check bool) "timed loads include vote runs" true
    (noisy.Cq_core.Hardware.timed_loads > quiet.Cq_core.Hardware.timed_loads)

(* Adaptive early stopping must beat a fixed repetition count on the same
   noisy target while learning the same machine (toy L1 keeps this
   quick). *)
let test_adaptive_cheaper_than_fixed () =
  let learn voting =
    Cq_core.Hardware.learn_set ~check_hits:false ~voting ~retries:3
      (M.create ~noise:M.default_noise CM.toy)
      CM.L1
  in
  let fixed = learn (FE.Fixed 5) in
  let adaptive = learn (FE.Adaptive { max = 5 }) in
  let rf = report_of fixed and ra = report_of adaptive in
  Alcotest.(check bool) "same automaton" true
    (Cq_automata.Mealy.equivalent rf.Cq_core.Learn.machine
       ra.Cq_core.Learn.machine);
  Alcotest.(check bool) "adaptive issues fewer timed loads" true
    (adaptive.Cq_core.Hardware.timed_loads < fixed.Cq_core.Hardware.timed_loads)

(* --- Bounded retry around Polca.Non_deterministic ------------------------ *)

(* An oracle that mis-reports exactly one outcome, once: the first answer
   of the first query is flipped, every re-execution is clean. *)
let flipping_oracle policy =
  let base = O.of_policy policy in
  let armed = ref true in
  let corrupt = function
    | r :: rest when !armed ->
        armed := false;
        (if Cq_cache.Cache_set.result_is_hit r then Cq_cache.Cache_set.Miss
         else Cq_cache.Cache_set.Hit)
        :: rest
    | rs -> rs
  in
  let query q = corrupt (base.O.query q) in
  {
    base with
    O.query;
    query_batch = O.sequential_batch query;
    prefix_sharing = false;
    ops = None;
  }

let test_transient_flip_absorbed () =
  let policy = Cq_policy.Lru.make 2 in
  let stats = O.fresh_stats () in
  let polca = Polca.create ~retries:2 ~stats (flipping_oracle policy) in
  let truth = Cq_policy.Policy.to_mealy policy in
  let word = [ 0; 1; 2; 0 ] in
  Alcotest.(check bool) "retry recovers the true answer" true
    (Polca.run polca word = Cq_automata.Mealy.run truth word);
  Alcotest.(check bool) "flip counted" true (Cq_util.Metrics.value stats.O.transient_flips >= 1);
  Alcotest.(check bool) "retry counted" true (Cq_util.Metrics.value stats.O.retry_attempts >= 1);
  (* The same flip is fatal without the retry layer. *)
  let polca0 = Polca.create (flipping_oracle policy) in
  match Polca.run polca0 word with
  | _ -> Alcotest.fail "expected Non_deterministic"
  | exception Polca.Non_deterministic _ -> ()

let test_structural_nondeterminism_still_fails () =
  (* A broken reset (modelled as an oracle lying about the initial
     content) fails on every re-execution: retries must not mask it, and
     the error must carry the retry history. *)
  let base = O.of_policy (Cq_policy.Lru.make 2) in
  let lying =
    { base with O.initial_content = [| B.of_index 7; B.of_index 8 |] }
  in
  let polca = Polca.create ~retries:2 lying in
  match Polca.run polca [ 0 ] with
  | _ -> Alcotest.fail "expected Non_deterministic"
  | exception Polca.Non_deterministic msg ->
      Alcotest.(check bool) "message records the exhausted retries" true
        (contains ~sub:"persisted after 2 retries" msg)

(* --- Drift detection and recalibration ----------------------------------- *)

let test_recalibration_fires_under_drift () =
  let be = backend_for ~noise:M.drift_noise CM.haswell CM.L1 0 in
  let b = B.of_index 0 in
  (* Hammer one (hitting) block: drift pushes the hit population up by
     ~0.0002 cycles per load, and the EWMA detector must request a
     recalibration well before misclassification distance (~4 cycles). *)
  let fired = ref false in
  (try
     for _ = 1 to 20_000 do
       ignore (BE.classify be (BE.timed_load be b));
       if BE.recalibrate_due be then begin
         fired := true;
         raise Exit
       end
     done
   with Exit -> ());
  Alcotest.(check bool) "drift detector fired" true !fired;
  Alcotest.(check bool) "recalibration honoured" true (BE.maybe_recalibrate be);
  Alcotest.(check int) "recalibration counted" 1 (BE.recalibrations be);
  Alcotest.(check bool) "request cleared" false (BE.recalibrate_due be)

let test_no_spurious_recalibration_when_quiet () =
  let be = backend_for ~noise:M.default_noise CM.haswell CM.L1 0 in
  let b = B.of_index 0 in
  for _ = 1 to 5_000 do
    ignore (BE.classify be (BE.timed_load be b))
  done;
  Alcotest.(check bool) "no recalibration without drift" false
    (BE.recalibrate_due be)

(* --- Memo regression: Hashtbl.replace, not add --------------------------- *)

let test_memo_requery_does_not_grow () =
  let fe = FE.create (backend_for CM.toy CM.L1 0) in
  let oracle = FE.oracle fe in
  let q = [ B.of_index 0; B.of_index 1; B.of_index 0 ] in
  let r1 = oracle.O.query q in
  let size1 = FE.memo_size fe in
  Alcotest.(check bool) "query memoized" true (size1 >= 1);
  let r2 = oracle.O.query q in
  Alcotest.(check bool) "memoized answer identical" true (r1 = r2);
  Alcotest.(check int) "re-query does not grow the memo" size1
    (FE.memo_size fe);
  Alcotest.(check bool) "memo hit recorded" true
    (Cq_util.Metrics.value (FE.stats fe).O.memo_hits >= 1)

(* --- Stats under voting: count actual executions ------------------------- *)

let test_stats_count_vote_executions () =
  let run voting =
    let fe = FE.create ~voting (backend_for CM.toy CM.L1 0) in
    ignore ((FE.oracle fe).O.query (List.map B.of_index [ 0; 1; 0 ]));
    FE.stats fe
  in
  let s1 = run (FE.Fixed 1) and s3 = run (FE.Fixed 3) in
  Alcotest.(check int) "two extra runs per profiled access" 6
    (Cq_util.Metrics.value s3.O.vote_runs);
  Alcotest.(check int) "timed loads count every repetition"
    (Cq_util.Metrics.value s1.O.timed_loads + Cq_util.Metrics.value s3.O.vote_runs)
    (Cq_util.Metrics.value s3.O.timed_loads);
  Alcotest.(check bool) "logical accesses also count re-measurements" true
    (Cq_util.Metrics.value s3.O.block_accesses
    > Cq_util.Metrics.value s1.O.block_accesses)

let test_frontend_rejects_even_voting () =
  let be = backend_for CM.toy CM.L1 0 in
  Alcotest.check_raises "even Fixed rejected"
    (Invalid_argument "Frontend: repetitions must be odd (even counts can tie)")
    (fun () -> ignore (FE.create ~voting:(FE.Fixed 4) be));
  Alcotest.check_raises "even Adaptive cap rejected"
    (Invalid_argument
       "Frontend: max repetitions must be odd (even counts can tie)")
    (fun () -> ignore (FE.create ~voting:(FE.Adaptive { max = 2 }) be));
  let fe = FE.create be in
  Alcotest.check_raises "even set_repetitions rejected"
    (Invalid_argument "Frontend: repetitions must be odd (even counts can tie)")
    (fun () -> FE.set_repetitions fe 6)

(* --- The self-healing membership cache ----------------------------------- *)

(* One flipped answer poisons the prefix cache; arbitration re-executes
   the conflicting word and overwrites the corrupt entry (two fresh runs
   outvote the single cached one). *)
let test_moracle_conflict_arbitration () =
  let module Mo = Cq_learner.Moracle in
  let truth w = List.map (fun i -> i * 10) w in
  let armed = ref true in
  let corrupting w =
    let o = truth w in
    if !armed then begin
      armed := false;
      match o with x :: rest -> (x + 1) :: rest | [] -> []
    end
    else o
  in
  let stats = Mo.fresh_stats () in
  let o =
    Mo.cached ~stats ~conflict_retries:2 (Mo.make ~n_inputs:3 corrupting)
  in
  (* First query caches the corrupt answer... *)
  Alcotest.(check (list int)) "poisoned first answer" [ 11 ] (o.Mo.query [ 1 ]);
  (* ...the longer word conflicts with it, and arbitration repairs both. *)
  Alcotest.(check (list int)) "conflict repaired" [ 10; 20 ] (o.Mo.query [ 1; 2 ]);
  Alcotest.(check (list int)) "cache overwritten" [ 10 ] (o.Mo.query [ 1 ]);
  Alcotest.(check bool) "conflict counted" true (Cq_util.Metrics.value stats.Mo.conflicts >= 1)

let test_moracle_persistent_conflict_raises () =
  let module Mo = Cq_learner.Moracle in
  let calls = ref 0 in
  (* Genuinely nondeterministic: a different answer on every execution. *)
  let nondet w =
    incr calls;
    List.map (fun i -> i + !calls) w
  in
  let o = Mo.cached ~conflict_retries:2 (Mo.make ~n_inputs:2 nondet) in
  ignore (o.Mo.query [ 0 ]);
  match o.Mo.query [ 0; 1 ] with
  | _ -> Alcotest.fail "expected Inconsistent"
  | exception Mo.Inconsistent msg ->
      Alcotest.(check bool) "message records the re-executions" true
        (contains ~sub:"re-executions" msg)

let suite =
  ( "noise",
    [
      Alcotest.test_case "Haswell L1: noisy = quiet automaton" `Slow
        test_haswell_l1_noise_matches_quiet;
      Alcotest.test_case "adaptive cheaper than fixed" `Quick
        test_adaptive_cheaper_than_fixed;
      Alcotest.test_case "transient flip absorbed" `Quick
        test_transient_flip_absorbed;
      Alcotest.test_case "structural nondeterminism fails" `Quick
        test_structural_nondeterminism_still_fails;
      Alcotest.test_case "drift fires recalibration" `Quick
        test_recalibration_fires_under_drift;
      Alcotest.test_case "no spurious recalibration" `Quick
        test_no_spurious_recalibration_when_quiet;
      Alcotest.test_case "memo re-query bounded" `Quick
        test_memo_requery_does_not_grow;
      Alcotest.test_case "stats count vote executions" `Quick
        test_stats_count_vote_executions;
      Alcotest.test_case "even voting rejected" `Quick
        test_frontend_rejects_even_voting;
      Alcotest.test_case "moracle conflict arbitration" `Quick
        test_moracle_conflict_arbitration;
      Alcotest.test_case "moracle persistent conflict raises" `Quick
        test_moracle_persistent_conflict_raises;
    ] )
