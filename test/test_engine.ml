(* Tests for the batched / parallel query engine: the prefix-sharing trie
   executor, Polca's session mode, the worker-domain pool, the bounded
   memo tables, and end-to-end engine equivalence — every fast path must
   be observationally identical to sequential reset-and-replay. *)

module B = Cq_cache.Block
module CS = Cq_cache.Cache_set
module O = Cq_cache.Oracle
module M = Cq_hwsim.Machine
module Zoo = Cq_policy.Zoo

let random_word prng ~universe ~max_len =
  let len = 1 + Cq_util.Prng.int prng max_len in
  List.init len (fun _ -> B.of_index (Cq_util.Prng.int prng universe))

let random_batch prng ~batch ~universe ~max_len =
  List.init batch (fun _ -> random_word prng ~universe ~max_len)

(* Trie execution of a batch must be byte-identical to answering each
   query from reset, across policies with different metadata shapes. *)
let test_batch_matches_sequential () =
  List.iter
    (fun name ->
      let prng = Cq_util.Prng.of_int 42 in
      let oracle = O.of_policy (Zoo.make_exn ~name ~assoc:4) in
      for _ = 1 to 10 do
        let batch = random_batch prng ~batch:12 ~universe:8 ~max_len:10 in
        let batched = oracle.O.query_batch batch in
        let sequential = List.map oracle.O.query batch in
        Alcotest.(check bool)
          (name ^ ": batch = sequential") true
          (batched = sequential)
      done)
    [ "LRU"; "PLRU"; "SRRIP-HP" ]

(* Prefix sharing must be a real saving: a batch with overlapping prefixes
   costs strictly fewer physical accesses than naive replay, and exactly
   what [plan_cost] predicts. *)
let test_trie_saves_accesses () =
  let set = CS.create (Zoo.make_exn ~name:"PLRU" ~assoc:4) in
  let oracle = O.of_cache_set set in
  let prng = Cq_util.Prng.of_int 7 in
  let prefix = random_word prng ~universe:6 ~max_len:8 in
  let batch = List.init 8 (fun i -> prefix @ [ B.of_index (i mod 6) ]) in
  let before = CS.accesses set in
  let answers = oracle.O.query_batch batch in
  let physical = CS.accesses set - before in
  let naive = List.fold_left (fun acc q -> acc + List.length q) 0 batch in
  Alcotest.(check int) "every query answered" 8 (List.length answers);
  Alcotest.(check bool) "strictly fewer accesses" true (physical < naive);
  let plan_naive, plan_trie = Cq_cache.Batch.plan_cost batch in
  Alcotest.(check int) "plan_cost naive" naive plan_naive;
  Alcotest.(check int) "plan_cost trie = physical accesses" physical plan_trie

(* Polca's session mode (live trace + checkpointed findEvicted scans) must
   produce the same outputs as per-probe replay of Algorithm 1. *)
let test_session_matches_replay () =
  List.iter
    (fun name ->
      let prng = Cq_util.Prng.of_int 11 in
      let session =
        Cq_core.Polca.create (O.of_policy (Zoo.make_exn ~name ~assoc:4))
      in
      let replay =
        Cq_core.Polca.create ~batch_probes:false
          (O.of_policy (Zoo.make_exn ~name ~assoc:4))
      in
      let n = Cq_core.Polca.n_inputs session in
      for _ = 1 to 20 do
        let len = 1 + Cq_util.Prng.int prng 12 in
        let word = List.init len (fun _ -> Cq_util.Prng.int prng n) in
        Alcotest.(check bool)
          (name ^ ": session = replay") true
          (Cq_core.Polca.run session word = Cq_core.Polca.run replay word)
      done)
    [ "LRU"; "PLRU"; "FIFO"; "SRRIP-HP"; "LIP" ]

(* The machine-level checkpoint must restore the full architectural state,
   and its restore thunk must be reusable (the session-mode fan-out scans
   restore the same checkpoint up to [assoc] times). *)
let test_machine_checkpoint () =
  let m = M.create ~noise:M.quiet_noise Cq_hwsim.Cpu_model.toy in
  let addrs = List.init 12 (fun i -> i * 64) in
  List.iter (fun a -> ignore (M.load m a)) addrs;
  let restore = M.checkpoint m in
  let probe () =
    List.map (fun a -> M.load m a)
      (List.filteri (fun i _ -> i mod 3 = 0) addrs)
  in
  let first = probe () in
  restore ();
  Alcotest.(check (list int)) "identical replay after restore" first (probe ());
  restore ();
  Alcotest.(check (list int)) "restore thunk is reusable" first (probe ())

(* The pool must return results in item order, identical to sequential
   execution, regardless of domain scheduling. *)
let test_pool_matches_sequential () =
  let pool = Cq_util.Pool.create ~size:3 ~factory:(fun () -> ref 0) () in
  let items = List.init 100 Fun.id in
  let results = Cq_util.Pool.map_list pool (fun c x -> incr c; x * x) items in
  Alcotest.(check (list int))
    "pool = sequential"
    (List.map (fun x -> x * x) items)
    results

(* A task that fails deterministically exhausts every bounded retry and
   surfaces as Worker_lost (the supervisor's taxonomy), carrying the
   original exception's message. *)
let test_pool_propagates_exceptions () =
  let pool = Cq_util.Pool.create ~size:2 ~factory:(fun () -> ()) () in
  match
    Cq_util.Pool.map_list pool
      (fun () x -> if x >= 3 then failwith "boom" else x)
      (List.init 10 Fun.id)
  with
  | _ -> Alcotest.fail "expected the worker failure to propagate"
  | exception Cq_util.Pool.Worker_lost msg ->
      let contains s sub =
        let n = String.length sub in
        let found = ref false in
        for i = 0 to String.length s - n do
          if String.sub s i n = sub then found := true
        done;
        !found
      in
      Alcotest.(check bool) "carries the original failure" true
        (contains msg "boom")

(* A transient failure (one poisoned context) must not lose the batch:
   completed results are salvaged, the failed task is retried on a rebuilt
   context, and the restart is reported through the stats record. *)
let test_pool_salvages_transient_failure () =
  let stats = Cq_util.Pool.fresh_stats () in
  let pool =
    Cq_util.Pool.create ~size:2 ~stats ~factory:(fun () -> ref 0) ()
  in
  let failed_once = Atomic.make false in
  let items = List.init 20 Fun.id in
  let results =
    Cq_util.Pool.map_list pool
      (fun c x ->
        incr c;
        if x = 7 && not (Atomic.exchange failed_once true) then
          failwith "transient glitch";
        x * x)
      items
  in
  Alcotest.(check (list int))
    "all tasks completed despite the injected failure"
    (List.map (fun x -> x * x) items)
    results;
  Alcotest.(check bool) "restart reported" true
    (Cq_util.Metrics.value stats.Cq_util.Pool.worker_restarts >= 1);
  Alcotest.(check bool) "retry reported" true
    (Cq_util.Metrics.value stats.Cq_util.Pool.task_retries >= 1)

(* Regression: a retried (salvaged) task must be counted once in
   [tasks] — completions, not attempts.  The old accounting summed per
   attempt, double-counting every salvaged slot. *)
let test_pool_task_count_reconciled_once () =
  let stats = Cq_util.Pool.fresh_stats () in
  let pool =
    Cq_util.Pool.create ~size:2 ~stats ~factory:(fun () -> ref 0) ()
  in
  let failed_once = Atomic.make false in
  let items = List.init 20 Fun.id in
  let results =
    Cq_util.Pool.map_list pool
      (fun c x ->
        incr c;
        if x = 7 && not (Atomic.exchange failed_once true) then
          failwith "transient glitch";
        x * x)
      items
  in
  Alcotest.(check (list int))
    "all tasks completed"
    (List.map (fun x -> x * x) items)
    results;
  Alcotest.(check bool) "the failure actually retried" true
    (Cq_util.Metrics.value stats.Cq_util.Pool.task_retries >= 1);
  Alcotest.(check int) "tasks counted once each, not per attempt"
    (List.length items)
    (Cq_util.Metrics.value stats.Cq_util.Pool.tasks)

(* Worker contexts are built once per slot and survive across map calls
   (that is what keeps worker oracle caches warm between rounds). *)
let test_pool_contexts_persist () =
  let built = Atomic.make 0 in
  let pool =
    Cq_util.Pool.create ~size:2
      ~factory:(fun () -> Atomic.incr built; ref 0)
      ()
  in
  ignore (Cq_util.Pool.map_list pool (fun c x -> incr c; x) (List.init 8 Fun.id));
  ignore (Cq_util.Pool.map_list pool (fun c x -> incr c; x) (List.init 8 Fun.id));
  Alcotest.(check bool) "at most [size] contexts built" true (Atomic.get built <= 2)

(* Bounded memo: overflow clears the table (and says so) without ever
   changing answers. *)
let test_memo_overflow () =
  let stats = O.fresh_stats () in
  let plain = O.of_policy (Zoo.make_exn ~name:"LRU" ~assoc:4) in
  let oracle = O.memoized ~stats ~max_entries:2 plain in
  let q i = [ B.of_index i; B.of_index ((i + 1) mod 6); B.of_index 0 ] in
  for i = 0 to 5 do
    ignore (oracle.O.query (q i))
  done;
  Alcotest.(check bool) "overflows recorded" true (Cq_util.Metrics.value stats.O.memo_overflows > 0);
  for i = 0 to 5 do
    Alcotest.(check bool) "answers unchanged by clears" true
      (oracle.O.query (q i) = plain.O.query (q i))
  done

(* End to end: all three engines learn the same automaton, and the batched
   engine actually saves accesses while doing it. *)
let test_engines_agree () =
  let policy () = Zoo.make_exn ~name:"PLRU" ~assoc:4 in
  let learn engine =
    Cq_core.Learn.learn_simulated ~engine ~identify:false (policy ())
  in
  let seq = learn Cq_core.Learn.Sequential in
  let bat = learn Cq_core.Learn.Batched in
  let par = learn (Cq_core.Learn.Parallel { domains = 2 }) in
  Alcotest.(check int) "batched states" seq.Cq_core.Learn.states
    bat.Cq_core.Learn.states;
  Alcotest.(check int) "parallel states" seq.Cq_core.Learn.states
    par.Cq_core.Learn.states;
  Alcotest.(check bool) "batched machine equivalent" true
    (Cq_automata.Mealy.equivalent seq.Cq_core.Learn.machine
       bat.Cq_core.Learn.machine);
  Alcotest.(check bool) "parallel machine equivalent" true
    (Cq_automata.Mealy.equivalent seq.Cq_core.Learn.machine
       par.Cq_core.Learn.machine);
  Alcotest.(check bool) "batched engine saves accesses" true
    (bat.Cq_core.Learn.accesses_saved > 0);
  Alcotest.(check bool) "sequential engine saves nothing" true
    (seq.Cq_core.Learn.accesses_saved = 0);
  Alcotest.(check int) "parallel reports its domains" 2
    par.Cq_core.Learn.domains

(* Acceptance for the noise-hardened layer: with voting enabled the
   frontend still exposes the batched/session path, and it must answer
   exactly like per-query sequential execution on an equally-noisy
   machine. *)
let test_batch_matches_sequential_under_noise () =
  let module FE = Cq_cachequery.Frontend in
  let module BE = Cq_cachequery.Backend in
  let module CM = Cq_hwsim.Cpu_model in
  let mk () =
    let machine = M.create ~noise:M.default_noise CM.toy in
    let be = BE.create machine { BE.level = CM.L1; slice = 0; set = 0 } in
    ignore (BE.calibrate be);
    FE.create ~voting:(FE.Adaptive { max = 5 }) be
  in
  let words =
    List.map
      (List.map B.of_index)
      [ [ 0; 1; 0; 2 ]; [ 1; 1; 0 ]; [ 2; 0; 1; 2 ]; [ 0 ]; [ 2; 2; 1; 0; 1 ] ]
  in
  let fe_seq = mk () and fe_bat = mk () in
  Alcotest.(check bool) "voting keeps the session path available" true
    (Option.is_some (FE.oracle fe_bat).O.ops
    && (FE.oracle fe_bat).O.prefix_sharing);
  let seq = List.map (FE.oracle fe_seq).O.query words in
  let bat = (FE.oracle fe_bat).O.query_batch words in
  Alcotest.(check bool) "batched = sequential under noise" true (seq = bat)

let suite =
  ( "engine",
    [
      Alcotest.test_case "trie batch = sequential" `Quick
        test_batch_matches_sequential;
      Alcotest.test_case "trie saves accesses" `Quick test_trie_saves_accesses;
      Alcotest.test_case "session = replay (Polca)" `Quick
        test_session_matches_replay;
      Alcotest.test_case "machine checkpoint determinism" `Quick
        test_machine_checkpoint;
      Alcotest.test_case "pool = sequential" `Quick test_pool_matches_sequential;
      Alcotest.test_case "pool propagates exceptions" `Quick
        test_pool_propagates_exceptions;
      Alcotest.test_case "pool salvages transient failures" `Quick
        test_pool_salvages_transient_failure;
      Alcotest.test_case "pool counts retried tasks once" `Quick
        test_pool_task_count_reconciled_once;
      Alcotest.test_case "pool contexts persist" `Quick
        test_pool_contexts_persist;
      Alcotest.test_case "bounded memo overflow" `Quick test_memo_overflow;
      Alcotest.test_case "engines agree" `Quick test_engines_agree;
      Alcotest.test_case "batched = sequential under noise" `Quick
        test_batch_matches_sequential_under_noise;
    ] )
