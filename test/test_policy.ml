(* Tests for cq_policy: Definition 2.1 well-formedness, the golden Table 2
   state counts, per-policy behaviours, and the zoo (construction +
   identification up to reset state and line permutation). *)

module P = Cq_policy.Policy
module T = Cq_policy.Types

let evct = T.Evct
let ln i = T.Line i

(* --- Table 2 golden state counts (the paper's ground truth) ------------- *)

let table2_counts =
  [
    ("FIFO", 2, 2); ("FIFO", 8, 8); ("FIFO", 16, 16);
    ("LRU", 2, 2); ("LRU", 4, 24);
    ("PLRU", 2, 2); ("PLRU", 4, 8); ("PLRU", 8, 128);
    ("MRU", 2, 2); ("MRU", 4, 14); ("MRU", 6, 62); ("MRU", 8, 254);
    ("LIP", 2, 2); ("LIP", 4, 24);
    ("SRRIP-HP", 2, 12); ("SRRIP-HP", 4, 178);
    ("SRRIP-FP", 2, 16); ("SRRIP-FP", 4, 256);
    ("New1", 4, 160); ("New2", 4, 175);
  ]

let test_table2_counts () =
  List.iter
    (fun (name, assoc, expected) ->
      let p = Cq_policy.Zoo.make_exn ~name ~assoc in
      Alcotest.(check int)
        (Printf.sprintf "%s assoc %d" name assoc)
        expected (P.n_minimal_states p))
    table2_counts

(* --- Per-policy behaviour ----------------------------------------------- *)

let victims p inputs = List.filter_map Fun.id (P.run p inputs)

let test_fifo_ignores_hits () =
  let p = Cq_policy.Fifo.make 4 in
  (* Hits interleaved with evictions do not change the round-robin order. *)
  Alcotest.(check (list int)) "round robin" [ 0; 1; 2; 3; 0 ]
    (victims p [ evct; ln 0; evct; ln 1; evct; ln 2; evct; ln 3; evct ])

let test_lru_promotes () =
  let p = Cq_policy.Lru.make 3 in
  (* Initial recency [0;1;2]: line 2 is LRU.  Touch 2, making 0 LRU. *)
  Alcotest.(check (list int)) "LRU victim after promote" [ 0 ]
    (victims p [ ln 2; ln 1; evct ]);
  (* The inserted block becomes MRU: two Evcts evict two different lines
     (victim 2 is promoted to MRU, so line 1 is the next LRU). *)
  Alcotest.(check (list int)) "insert is MRU" [ 2; 1 ] (victims p [ evct; evct ])

let test_lip_inserts_at_lru () =
  let p = Cq_policy.Lip.make 3 in
  (* Without re-reference the same line is evicted over and over. *)
  Alcotest.(check (list int)) "LIP thrashes one line" [ 2; 2; 2 ]
    (victims p [ evct; evct; evct ]);
  (* A hit on the inserted line promotes it. *)
  Alcotest.(check (list int)) "promoted after hit" [ 2; 1 ]
    (victims p [ evct; ln 2; evct ])

let test_plru_any_assoc () =
  Alcotest.check_raises "assoc 0 rejected"
    (Invalid_argument "Plru.make: associativity must be >= 1")
    (fun () -> ignore (Cq_policy.Plru.make 0));
  (* Ceil/floor tree over 3 lines: root splits {0,1} / {2}.  From the
     all-zero state the victim walk reaches line 0; three consecutive
     misses cover all three lines. *)
  let p = Cq_policy.Plru.make 3 in
  Alcotest.(check (list int)) "PLRU-3 sweep" [ 0; 2; 1 ]
    (victims p [ evct; evct; evct ])

let test_plru_victim_walk () =
  let p = Cq_policy.Plru.make 4 in
  (* From the all-zero tree, the victim walk goes to leaf 0. *)
  Alcotest.(check (list int)) "first victim" [ 0 ] (victims p [ evct ]);
  (* Touching line 0 points the whole path away from it. *)
  Alcotest.(check (list int)) "protected after touch" [ 2 ] (victims p [ ln 0; evct ])

let test_mru_bits () =
  let p = Cq_policy.Mru.make 4 in
  (* Init marks line 0; victims are the leftmost lines with a clear bit. *)
  Alcotest.(check (list int)) "leftmost clear" [ 1; 2 ] (victims p [ evct; evct ]);
  (* Setting the last clear bit resets the others. *)
  let out = victims p [ evct; evct; evct; evct ] in
  Alcotest.(check (list int)) "wraps after full" [ 1; 2; 3; 0 ] out

let test_srrip_hp_vs_fp () =
  let hp = Cq_policy.Srrip.make Cq_policy.Srrip.Hit_priority 4 in
  let fp = Cq_policy.Srrip.make Cq_policy.Srrip.Frequency_priority 4 in
  (* Both start all-distant: evict line 0 first. *)
  Alcotest.(check (list int)) "HP first victim" [ 0 ] (victims hp [ evct ]);
  Alcotest.(check (list int)) "FP first victim" [ 0 ] (victims fp [ evct ]);
  (* They are different policies: some trace separates them. *)
  Alcotest.(check bool) "HP <> FP" false (P.equivalent hp fp)

let test_srrip_aging () =
  let hp = Cq_policy.Srrip.make Cq_policy.Srrip.Hit_priority 2 in
  (* Fill both lines (ages 2,2 after two misses from 3,3), hit line 1
     (age 0), then a miss must age everyone before finding a 3: victim is
     line 0 (age 2 -> 3 first from the left). *)
  Alcotest.(check (list int)) "ages then evicts leftmost" [ 0; 1; 0 ]
    (victims hp [ evct; evct; ln 1; evct ])

let test_new1_figure5 () =
  let p = Cq_policy.Newpol.make_new1 4 in
  (* Initial state {3,3,3,0}: leftmost age-3 line is 0. *)
  Alcotest.(check (list int)) "first victims" [ 0; 1 ] (victims p [ evct; evct ])

let test_new2_figure5 () =
  let p = Cq_policy.Newpol.make_new2 4 in
  (* Initial state {3,3,3,3}. *)
  Alcotest.(check (list int)) "first victims" [ 0; 1 ] (victims p [ evct; evct ])

let test_new_policies_differ () =
  Alcotest.(check bool) "New1 <> New2" false
    (P.equivalent (Cq_policy.Newpol.make_new1 4) (Cq_policy.Newpol.make_new2 4));
  Alcotest.(check bool) "New1 <> SRRIP-HP" false
    (P.equivalent
       (Cq_policy.Newpol.make_new1 4)
       (Cq_policy.Srrip.make Cq_policy.Srrip.Hit_priority 4))

let test_bip_throttle () =
  let p = Cq_policy.Bip.make ~throttle:2 4 in
  (* Every second miss promotes the incoming block to MRU: the victim
     sequence is not LIP's constant line. *)
  let v = victims p [ evct; evct; evct; evct ] in
  Alcotest.(check bool) "not all equal" true
    (List.exists (fun x -> x <> List.hd v) v)

let test_brrip_counts () =
  let p = Cq_policy.Srrip.make_brrip ~throttle:2 2 in
  Alcotest.(check bool) "BRRIP has reachable machine" true
    (P.n_minimal_states p > 2)

(* --- Model validity ------------------------------------------------------ *)

let test_definition_2_1_checks () =
  (* A policy that evicts on a hit violates Definition 2.1(b). *)
  let bad =
    P.v ~name:"bad" ~assoc:2 ~init:()
      ~step:(fun () -> function T.Line _ -> ((), Some 0) | T.Evct -> ((), Some 0))
      ()
  in
  Alcotest.check_raises "hit with eviction rejected"
    (Invalid_argument "Policy: Line access must output ⊥") (fun () ->
      ignore (P.run bad [ ln 0 ]))

let test_advance_and_warmed () =
  let p = Cq_policy.Fifo.make 4 in
  (* After two evictions the pointer is at line 2. *)
  Alcotest.(check (list int)) "advanced pointer" [ 2 ]
    (victims (P.advance p [ evct; evct ]) [ evct ]);
  Alcotest.(check (list int)) "warmed wraps to 0" [ 0 ] (victims (P.warmed p) [ evct ])

let test_victim_after () =
  let p = Cq_policy.Lru.make 2 in
  Alcotest.(check int) "LRU victim" 0 (P.victim_after p [ ln 1 ]);
  Alcotest.(check int) "LRU victim after touch 0" 1 (P.victim_after p [ ln 0 ])

(* --- Zoo ------------------------------------------------------------------ *)

let test_zoo_make_errors () =
  (match Cq_policy.Zoo.make ~name:"NOPE" ~assoc:4 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown policy accepted");
  (* PLRU uses the ceil/floor split tree, so any assoc >= 1 is valid —
     including the non-power-of-two 6 and the scaling targets 12/16. *)
  (match Cq_policy.Zoo.make ~name:"PLRU" ~assoc:6 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("PLRU-6 rejected: " ^ e));
  match Cq_policy.Zoo.make ~name:"New1" ~assoc:1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "New1-1 accepted"

let test_zoo_identify_direct () =
  let m = P.to_mealy (Cq_policy.Zoo.make_exn ~name:"New1" ~assoc:4) in
  Alcotest.(check (list string)) "New1 identified" [ "New1" ] (Cq_policy.Zoo.identify m)

let test_zoo_identify_permuted () =
  (* New1 conjugated by a line permutation and started from a later state
     must still be identified (the hardware-learning artefacts). *)
  let p = Cq_policy.Zoo.make_exn ~name:"New1" ~assoc:4 in
  let m = P.to_mealy (P.advance p [ evct; ln 2; evct ]) in
  let relabeled = Cq_policy.Zoo.relabel_lines 4 [ 3; 2; 1; 0 ] m in
  Alcotest.(check (list string)) "permuted New1 identified" [ "New1" ]
    (Cq_policy.Zoo.identify relabeled)

let test_zoo_identify_unknown () =
  (* A policy not in the zoo: LRU with a "sticky" line 0 never evicted. *)
  let weird =
    P.v ~name:"weird" ~assoc:2 ~init:()
      ~step:(fun () -> function T.Line _ -> ((), None) | T.Evct -> ((), Some 1))
      ()
  in
  Alcotest.(check (list string)) "nothing matches" []
    (Cq_policy.Zoo.identify (P.to_mealy weird))

(* --- qcheck --------------------------------------------------------------- *)

let arb_inputs assoc =
  QCheck.make
    QCheck.Gen.(list_size (1 -- 20) (map (fun i -> if i = assoc then evct else ln i) (0 -- assoc)))

let all_small_policies =
  List.concat_map
    (fun name ->
      List.filter_map
        (fun assoc ->
          match Cq_policy.Zoo.make ~name ~assoc with
          | Ok p -> Some p
          | Error _ -> None)
        [ 2; 4 ])
    Cq_policy.Zoo.names

let prop_outputs_well_formed =
  QCheck.Test.make ~name:"policies satisfy Definition 2.1" ~count:100
    (arb_inputs 4) (fun inputs ->
      List.for_all
        (fun p ->
          if P.assoc p <> 4 then true
          else
            List.for_all2
              (fun input output ->
                match (input, output) with
                | T.Evct, Some v -> v >= 0 && v < 4
                | T.Evct, None -> false
                | T.Line _, None -> true
                | T.Line _, Some _ -> false)
              inputs (P.run p inputs))
        all_small_policies)

let prop_plru_covers_all_ways =
  (* Under tree-PLRU, n consecutive misses evict n distinct ways, from any
     reachable state — this is what makes 1x-assoc eviction sweeps work. *)
  QCheck.Test.make ~name:"PLRU: n consecutive misses hit n distinct ways"
    ~count:200 (arb_inputs 8) (fun prefix ->
      let p = P.advance (Cq_policy.Plru.make 8) prefix in
      let vs = victims p (List.init 8 (fun _ -> evct)) in
      List.length (List.sort_uniq compare vs) = 8)

let prop_new1_always_has_age3 =
  (* The invariant that makes New1's eviction total. *)
  QCheck.Test.make ~name:"New1: eviction never gets stuck" ~count:200
    (arb_inputs 4) (fun inputs ->
      let p = Cq_policy.Newpol.make_new1 4 in
      match P.run p (inputs @ [ evct ]) with
      | _ -> true
      | exception Invalid_argument _ -> false)

let prop_mru_covers_within_2n =
  QCheck.Test.make ~name:"MRU: 2n misses cover all lines" ~count:200
    (arb_inputs 4) (fun prefix ->
      let p = P.advance (Cq_policy.Mru.make 4) prefix in
      let vs = victims p (List.init 8 (fun _ -> evct)) in
      List.length (List.sort_uniq compare vs) = 4)

let suite =
  ( "policy",
    [
      Alcotest.test_case "Table 2 state counts (golden)" `Quick test_table2_counts;
      Alcotest.test_case "FIFO ignores hits" `Quick test_fifo_ignores_hits;
      Alcotest.test_case "LRU promotion" `Quick test_lru_promotes;
      Alcotest.test_case "LIP LRU-insertion" `Quick test_lip_inserts_at_lru;
      Alcotest.test_case "PLRU any associativity" `Quick test_plru_any_assoc;
      Alcotest.test_case "PLRU victim walk" `Quick test_plru_victim_walk;
      Alcotest.test_case "MRU bits" `Quick test_mru_bits;
      Alcotest.test_case "SRRIP HP vs FP" `Quick test_srrip_hp_vs_fp;
      Alcotest.test_case "SRRIP aging" `Quick test_srrip_aging;
      Alcotest.test_case "New1 behaviour" `Quick test_new1_figure5;
      Alcotest.test_case "New2 behaviour" `Quick test_new2_figure5;
      Alcotest.test_case "New policies distinct" `Quick test_new_policies_differ;
      Alcotest.test_case "BIP throttle" `Quick test_bip_throttle;
      Alcotest.test_case "BRRIP states" `Quick test_brrip_counts;
      Alcotest.test_case "Definition 2.1 checks" `Quick test_definition_2_1_checks;
      Alcotest.test_case "advance / warmed" `Quick test_advance_and_warmed;
      Alcotest.test_case "victim_after" `Quick test_victim_after;
      Alcotest.test_case "zoo make errors" `Quick test_zoo_make_errors;
      Alcotest.test_case "zoo identify (direct)" `Quick test_zoo_identify_direct;
      Alcotest.test_case "zoo identify (permuted)" `Quick test_zoo_identify_permuted;
      Alcotest.test_case "zoo identify (unknown)" `Quick test_zoo_identify_unknown;
      QCheck_alcotest.to_alcotest prop_outputs_well_formed;
      QCheck_alcotest.to_alcotest prop_plru_covers_all_ways;
      QCheck_alcotest.to_alcotest prop_new1_always_has_age3;
      QCheck_alcotest.to_alcotest prop_mru_covers_within_2n;
    ] )
