(* Tests for cq_cachequery: backend calibration, address selection, cache
   filtering, query execution, and the frontend (resets, repetition,
   memoization, oracle view). *)

module BE = Cq_cachequery.Backend
module FE = Cq_cachequery.Frontend
module M = Cq_hwsim.Machine
module CM = Cq_hwsim.Cpu_model
module B = Cq_cache.Block

let cres = Alcotest.testable Cq_cache.Cache_set.pp_result ( = )

let quiet_backend ?(model = CM.skylake) ?(level = CM.L1) ?(set = 0) () =
  let machine = M.create ~noise:M.quiet_noise model in
  let be = BE.create machine { BE.level; slice = 0; set } in
  ignore (BE.calibrate be);
  be

let test_calibration_separates () =
  List.iter
    (fun level ->
      let machine = M.create ~noise:M.default_noise CM.skylake in
      let be = BE.create machine { BE.level; slice = 0; set = 1 } in
      let thr, hits, misses = BE.calibrate be in
      let mean xs =
        List.fold_left ( + ) 0 xs * 100 / max 1 (List.length xs * 100)
      in
      ignore mean;
      let max_hit = List.fold_left max 0 hits in
      (* Allow for outlier spikes in the hit population; the median-based
         threshold must still separate the bulk. *)
      let below = List.length (List.filter (fun h -> h <= thr) hits) in
      let above = List.length (List.filter (fun m -> m > thr) misses) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: most hits below threshold" (CM.level_to_string level))
        true
        (below * 10 >= List.length hits * 9);
      Alcotest.(check bool)
        (Printf.sprintf "%s: most misses above threshold" (CM.level_to_string level))
        true
        (above * 10 >= List.length misses * 9);
      ignore max_hit)
    [ CM.L1; CM.L2; CM.L3 ]

let test_target_validation () =
  let machine = M.create ~noise:M.quiet_noise CM.skylake in
  Alcotest.check_raises "set out of range"
    (Invalid_argument "Backend.create: set out of range") (fun () ->
      ignore (BE.create machine { BE.level = CM.L1; slice = 0; set = 64 }));
  Alcotest.check_raises "slice out of range"
    (Invalid_argument "Backend.create: slice out of range") (fun () ->
      ignore (BE.create machine { BE.level = CM.L1; slice = 1; set = 0 }))

let run_mbl be input =
  let fe = FE.create be in
  List.map snd (FE.run_mbl fe input)

let test_eviction_probe_l1 () =
  (* '@ X _?' on Skylake L1 (PLRU): X evicts way 0, i.e. block A. *)
  let be = quiet_backend () in
  let results = run_mbl be "@ X _?" in
  Alcotest.(check (list (list cres)))
    "exactly A evicted"
    [ [ Cq_cache.Cache_set.Miss ]; [ Cq_cache.Cache_set.Hit ];
      [ Cq_cache.Cache_set.Hit ]; [ Cq_cache.Cache_set.Hit ];
      [ Cq_cache.Cache_set.Hit ]; [ Cq_cache.Cache_set.Hit ];
      [ Cq_cache.Cache_set.Hit ]; [ Cq_cache.Cache_set.Hit ] ]
    results

let test_flush_tag () =
  let be = quiet_backend () in
  let results = run_mbl be "@ A! A?" in
  Alcotest.(check (list (list cres))) "clflush forces a miss"
    [ [ Cq_cache.Cache_set.Miss ] ] results

let test_filtering_keeps_l1_out () =
  (* For an L2 target, a block must never be served from L1: its second
     access still reads the L2 latency (a 'hit' at L2), and ground truth
     says it is not resident in L1. *)
  let machine = M.create ~noise:M.quiet_noise CM.skylake in
  let be = BE.create machine { BE.level = CM.L2; slice = 0; set = 17 } in
  ignore (BE.calibrate be);
  let fe = FE.create be in
  ignore (FE.run_mbl fe "A B A? B?");
  (* After the query, neither A nor B may be resident in any L1 set. *)
  let l1_holds =
    List.exists
      (fun set ->
        Array.exists Option.is_some (M.peek_set machine CM.L1 ~slice:0 ~set))
      (List.init 64 Fun.id)
  in
  (* The filter sweeps themselves live in L1, so L1 is not empty; instead
     check the L2 correctness: the profiled accesses are hits at L2. *)
  ignore l1_holds;
  let results = List.concat (List.map snd (FE.run_mbl fe "A B A? B?")) in
  Alcotest.(check (list cres)) "L2 hits"
    [ Cq_cache.Cache_set.Hit; Cq_cache.Cache_set.Hit ] results

let test_l2_behaviour_matches_new1 () =
  (* The observed hit/miss trace through CacheQuery on the simulated
     Skylake L2 must match the New1 ground-truth cache for the same block
     trace (modulo line placement, hit/miss traces are placement-free). *)
  let be = quiet_backend ~level:CM.L2 ~set:9 () in
  let fe = FE.create be in
  let oracle = FE.oracle fe in
  (* After F+R, fills do not touch New1's ages (fill_touches_policy =
     false), so the reference policy is New1 with its ages as left by the
     *previous* query — using a fresh machine, the very first F+R leaves
     the initial ages.  Compare two frontends for consistency instead. *)
  let be2 = quiet_backend ~level:CM.L2 ~set:9 () in
  let fe2 = FE.create be2 in
  let oracle2 = FE.oracle fe2 in
  let q = List.map B.of_index [ 0; 4; 1; 0; 5; 2; 1 ] in
  Alcotest.(check (list cres)) "two fresh machines agree"
    (oracle.Cq_cache.Oracle.query q)
    (oracle2.Cq_cache.Oracle.query q)

let test_frontend_memo () =
  let be = quiet_backend () in
  let fe = FE.create be in
  let oracle = FE.oracle fe in
  let q = List.map B.of_index [ 0; 8; 1 ] in
  let r1 = oracle.Cq_cache.Oracle.query q in
  let loads_before = BE.timed_loads be in
  let r2 = oracle.Cq_cache.Oracle.query q in
  Alcotest.(check (list cres)) "memo stable" r1 r2;
  Alcotest.(check int) "no new loads" loads_before (BE.timed_loads be);
  Alcotest.(check int) "memo hit recorded" 1
    (Cq_util.Metrics.value (FE.stats fe).Cq_cache.Oracle.memo_hits);
  FE.clear_memo fe;
  ignore (oracle.Cq_cache.Oracle.query q);
  Alcotest.(check bool) "cleared memo re-executes" true (BE.timed_loads be > loads_before)

let test_repetitions_denoise () =
  (* Under heavy measurement noise, majority voting recovers the quiet
     machine's answers. *)
  let mk noise reps =
    let machine = M.create ~seed:11L ~noise CM.skylake in
    let be = BE.create machine { BE.level = CM.L1; slice = 0; set = 2 } in
    ignore (BE.calibrate be);
    FE.create ~repetitions:reps be
  in
  let quiet_fe = mk M.quiet_noise 1 in
  let noisy_fe =
    mk
      { M.default_noise with jitter_sigma = 3.0; outlier_prob = 0.02; outlier_cycles = 300 }
      9
  in
  let q = List.map B.of_index [ 0; 1; 8; 0; 9; 3 ] in
  Alcotest.(check (list cres)) "majority vote agrees with quiet"
    ((FE.oracle quiet_fe).Cq_cache.Oracle.query q)
    ((FE.oracle noisy_fe).Cq_cache.Oracle.query q)

let test_reset_sequences () =
  let be = quiet_backend () in
  let fe = FE.create be in
  (* A query that changes state, then the same query again: with F+R the
     answers must be identical (the reset restores the set). *)
  FE.set_memo fe false;
  let oracle = FE.oracle fe in
  let q = List.map B.of_index [ 8; 0; 9; 1; 8 ] in
  Alcotest.(check (list cres)) "F+R makes queries repeatable"
    (oracle.Cq_cache.Oracle.query q)
    (oracle.Cq_cache.Oracle.query q);
  (* With no reset at all, consecutive queries see each other's state:
     eight fresh blocks miss on the first run and (being resident) hit on
     the second. *)
  FE.set_reset fe FE.No_reset;
  let q' = List.map B.of_index [ 20; 21; 22; 23; 24; 25; 26; 27 ] in
  let r1 = oracle.Cq_cache.Oracle.query q' in
  let r2 = oracle.Cq_cache.Oracle.query q' in
  Alcotest.(check bool) "No_reset leaks state" true (r1 <> r2)

let test_reset_to_string () =
  Alcotest.(check string) "F+R" "F+R" (FE.reset_to_string FE.Flush_refill);
  Alcotest.(check string) "none" "none" (FE.reset_to_string FE.No_reset);
  Alcotest.(check string) "sequence" "@ @"
    (FE.reset_to_string (FE.Sequence (Cq_mbl.Ast.Seq [ Cq_mbl.Ast.At; Cq_mbl.Ast.At ])))

let test_toy_full_pipeline () =
  (* End-to-end on the toy CPU: learn its L1 (PLRU assoc 2 = 2 states). *)
  let machine = M.create ~noise:M.quiet_noise CM.toy in
  let run = Cq_core.Hardware.learn_set machine CM.L1 ~set:3 in
  match run.Cq_core.Hardware.outcome with
  | Cq_core.Hardware.Learned { report; _ } ->
      Alcotest.(check int) "toy L1 has 2 states" 2 report.Cq_core.Learn.states;
      Alcotest.(check bool) "identified as PLRU/LRU family" true
        (List.mem "PLRU" report.Cq_core.Learn.identified)
  | Cq_core.Hardware.Partial { failure; _ } ->
      Alcotest.fail (Fmt.str "%a" Cq_core.Learn.pp_failure failure)
  | Cq_core.Hardware.Failed { reason; _ } -> Alcotest.fail reason

let test_toy_l2_new1 () =
  (* The toy L2 runs New1 at associativity 2 and needs a non-F+R reset
     (fill does not touch the policy). *)
  let machine = M.create ~noise:M.quiet_noise CM.toy in
  let run = Cq_core.Hardware.learn_set machine CM.L2 ~set:5 in
  match run.Cq_core.Hardware.outcome with
  | Cq_core.Hardware.Learned { report; reset; _ } ->
      Alcotest.(check bool) "reset is not plain F+R" true (reset <> FE.Flush_refill);
      Alcotest.(check bool) "New1-2 identified" true
        (List.mem "New1" report.Cq_core.Learn.identified)
  | Cq_core.Hardware.Partial { failure; _ } ->
      Alcotest.fail (Fmt.str "%a" Cq_core.Learn.pp_failure failure)
  | Cq_core.Hardware.Failed { reason; _ } -> Alcotest.fail reason

let test_toy_l3_leader () =
  (* Toy L3 leader-A set (set mod 8 = 0) runs PLRU at associativity 4 (the
     real CPUs' 175-state New2 leaders are exercised by the Table 4
     bench). *)
  let machine = M.create ~noise:M.quiet_noise CM.toy in
  let run = Cq_core.Hardware.learn_set machine CM.L3 ~set:8 in
  match run.Cq_core.Hardware.outcome with
  | Cq_core.Hardware.Learned { report; _ } ->
      Alcotest.(check int) "PLRU-4 state count" 8 report.Cq_core.Learn.states;
      Alcotest.(check bool) "identified as PLRU" true
        (List.mem "PLRU" report.Cq_core.Learn.identified)
  | Cq_core.Hardware.Partial { failure; _ } ->
      Alcotest.fail (Fmt.str "%a" Cq_core.Learn.pp_failure failure)
  | Cq_core.Hardware.Failed { reason; _ } -> Alcotest.fail reason

let suite =
  ( "cachequery",
    [
      Alcotest.test_case "calibration separates" `Quick test_calibration_separates;
      Alcotest.test_case "target validation" `Quick test_target_validation;
      Alcotest.test_case "eviction probe (Example 4.1)" `Quick test_eviction_probe_l1;
      Alcotest.test_case "flush tag" `Quick test_flush_tag;
      Alcotest.test_case "L1 filtering under L2 target" `Quick test_filtering_keeps_l1_out;
      Alcotest.test_case "L2 determinism across machines" `Quick test_l2_behaviour_matches_new1;
      Alcotest.test_case "frontend memo" `Quick test_frontend_memo;
      Alcotest.test_case "repetition denoising" `Quick test_repetitions_denoise;
      Alcotest.test_case "reset sequences" `Quick test_reset_sequences;
      Alcotest.test_case "reset to string" `Quick test_reset_to_string;
      Alcotest.test_case "toy pipeline: L1" `Quick test_toy_full_pipeline;
      Alcotest.test_case "toy pipeline: L2 New1" `Quick test_toy_l2_new1;
      Alcotest.test_case "toy pipeline: L3 leader New2" `Quick test_toy_l3_leader;
    ] )
