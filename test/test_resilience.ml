(* Tests for the resilience layer: Backoff (deterministic jittered
   schedules, the retry loop), Breaker (state machine driven by a fake
   clock, never a sleep), Faults (schedule semantics, spec parsing,
   ambient scoping), Atomic_file's typed failure contract, and the Disk
   headroom probe. *)

module Backoff = Cq_util.Backoff
module Breaker = Cq_util.Breaker
module Faults = Cq_util.Faults
module Atomic_file = Cq_util.Atomic_file
module Disk = Cq_util.Disk

(* --- Backoff --- *)

let test_backoff_policy_validation () =
  List.iter
    (fun mk ->
      match mk () with
      | (_ : Backoff.policy) -> Alcotest.fail "invalid policy must raise"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> Backoff.policy ~base:(-0.1) ());
      (fun () -> Backoff.policy ~base:1.0 ~cap:0.5 ());
      (fun () -> Backoff.policy ~multiplier:0.5 ());
    ]

let test_backoff_deterministic () =
  let seq seed =
    let t = Backoff.start ~seed Backoff.default in
    List.init 16 (fun _ -> Backoff.next t)
  in
  Alcotest.(check (list (float 0.0))) "same seed, same schedule" (seq 7) (seq 7);
  Alcotest.(check bool)
    "different seeds diverge" true
    (seq 7 <> seq 8);
  (* Every delay respects the cap; decorrelated jitter stays >= 0. *)
  List.iter
    (fun d ->
      Alcotest.(check bool) "within [0, cap]" true
        (d >= 0.0 && d <= Backoff.default.Backoff.cap))
    (seq 3);
  let t = Backoff.start ~seed:7 Backoff.default in
  let first = Backoff.next t in
  ignore (Backoff.next t);
  Backoff.reset t;
  Alcotest.(check (float 0.0)) "reset restarts the sequence" first
    (Backoff.next t)

let test_backoff_immediate () =
  let t = Backoff.start Backoff.immediate in
  for _ = 1 to 8 do
    Alcotest.(check (float 0.0)) "immediate never waits" 0.0 (Backoff.next t)
  done

let test_backoff_retry () =
  (* Succeed on the third attempt: two sleeps recorded, attempts 1-based. *)
  let slept = ref [] in
  let sleep d = slept := d :: !slept in
  let attempts_seen = ref [] in
  let result =
    Backoff.retry ~sleep ~seed:1 ~policy:Backoff.default ~attempts:5 ~init:0
      (fun ~attempt s ->
        attempts_seen := attempt :: !attempts_seen;
        if attempt = 3 then `Done (s + 100) else `Retry (s + 1))
  in
  Alcotest.(check (result int int)) "done with carried state" (Ok 102) result;
  Alcotest.(check (list int)) "attempts 1-based in order" [ 1; 2; 3 ]
    (List.rev !attempts_seen);
  Alcotest.(check int) "one sleep per retry" 2 (List.length !slept);
  (* Exhaustion: Error carries the final state; immediate never sleeps. *)
  let slept = ref 0 in
  let result =
    Backoff.retry
      ~sleep:(fun _ -> incr slept)
      ~policy:Backoff.immediate ~attempts:3 ~init:[]
      (fun ~attempt s -> `Retry (attempt :: s))
  in
  Alcotest.(check (result int (list int))) "exhausted carries final state"
    (Error [ 3; 2; 1 ]) result;
  Alcotest.(check int) "zero delays skip sleep" 0 !slept

(* --- Breaker --- *)

let fake_clock () =
  let now = ref 0.0 in
  (now, fun () -> !now)

let test_breaker_trips_and_recovers () =
  let now, clock = fake_clock () in
  let b = Breaker.create ~clock ~failure_threshold:3 ~cooldown:5.0 () in
  Alcotest.(check bool) "starts closed" true (Breaker.allow b);
  Breaker.failure b;
  Breaker.failure b;
  Alcotest.(check bool) "below threshold stays closed" true (Breaker.allow b);
  Breaker.success b;
  (* success resets the consecutive count *)
  Breaker.failure b;
  Breaker.failure b;
  Alcotest.(check string) "still closed" "closed"
    (Breaker.state_to_string (Breaker.state b));
  Breaker.failure b;
  Alcotest.(check string) "third consecutive failure trips" "open"
    (Breaker.state_to_string (Breaker.state b));
  Alcotest.(check int) "one trip" 1 (Breaker.trips b);
  Alcotest.(check bool) "open sheds" false (Breaker.allow b);
  Alcotest.(check int) "rejection counted" 1 (Breaker.rejections b);
  (* Cooldown not elapsed: still shedding. *)
  now := 4.9;
  Alcotest.(check bool) "cooldown pending" false (Breaker.allow b);
  (* Cooldown elapsed: exactly one probe; concurrent callers shed. *)
  now := 5.1;
  Alcotest.(check bool) "probe admitted" true (Breaker.allow b);
  Alcotest.(check string) "half-open" "half_open"
    (Breaker.state_to_string (Breaker.state b));
  Alcotest.(check bool) "second caller shed during probe" false
    (Breaker.allow b);
  (* Probe fails: back to open, cooldown restarts from now. *)
  Breaker.failure b;
  Alcotest.(check string) "probe failure re-opens" "open"
    (Breaker.state_to_string (Breaker.state b));
  now := 9.0;
  Alcotest.(check bool) "restarted cooldown pending" false (Breaker.allow b);
  now := 10.2;
  Alcotest.(check bool) "second probe admitted" true (Breaker.allow b);
  Breaker.success b;
  Alcotest.(check string) "probe success closes" "closed"
    (Breaker.state_to_string (Breaker.state b));
  Alcotest.(check bool) "closed admits" true (Breaker.allow b)

let test_breaker_abandon_frees_probe () =
  let now, clock = fake_clock () in
  let b = Breaker.create ~clock ~failure_threshold:1 ~cooldown:1.0 () in
  Breaker.failure b;
  now := 1.5;
  Alcotest.(check bool) "probe admitted" true (Breaker.allow b);
  Alcotest.(check bool) "slot held" false (Breaker.allow b);
  (* The probe was cancelled — no verdict on the backend.  The slot must
     free without closing the breaker. *)
  Breaker.abandon b;
  Alcotest.(check string) "still half-open" "half_open"
    (Breaker.state_to_string (Breaker.state b));
  Alcotest.(check bool) "next caller can probe" true (Breaker.allow b)

(* --- Faults --- *)

let test_faults_schedules () =
  let t = Faults.create () in
  Faults.arm t ~site:"nth" (Faults.Nth 3);
  let fired = List.init 5 (fun _ -> Faults.fire t "nth") in
  Alcotest.(check (list bool)) "nth=3 fires exactly on the 3rd hit"
    [ false; false; true; false; false ]
    fired;
  Faults.arm t ~site:"every" ~limit:2 (Faults.Every 2);
  let fired = List.init 6 (fun _ -> Faults.fire t "every") in
  Alcotest.(check (list bool)) "every=2,limit=2"
    [ false; true; false; true; false; false ]
    fired;
  Faults.arm t ~site:"first" (Faults.First 2);
  let fired = List.init 4 (fun _ -> Faults.fire t "first") in
  Alcotest.(check (list bool)) "first=2"
    [ true; true; false; false ]
    fired;
  Faults.arm t ~site:"reach" (Faults.Reach 10);
  Alcotest.(check bool) "reach below threshold" false
    (Faults.fire ~n:9 t "reach");
  Alcotest.(check bool) "reach fires at threshold" true
    (Faults.fire ~n:10 t "reach");
  Alcotest.(check bool) "reach fires once" false (Faults.fire ~n:11 t "reach");
  Alcotest.(check bool) "unarmed site never fires" false
    (Faults.fire t "never-armed");
  Alcotest.(check int) "hits counted" 5 (Faults.hits t "nth");
  Alcotest.(check int) "fires counted" 1 (Faults.fires t "nth")

let test_faults_prob_deterministic () =
  let pattern seed =
    let t = Faults.create ~seed () in
    Faults.arm t ~site:"p" (Faults.Prob 0.3);
    List.init 64 (fun _ -> Faults.fire t "p")
  in
  Alcotest.(check (list bool)) "same seed, same pattern" (pattern 42)
    (pattern 42);
  Alcotest.(check bool) "different seeds diverge" true
    (pattern 42 <> pattern 43);
  (* Site streams are independent: arming a second site must not perturb
     the first one's pattern. *)
  let t = Faults.create ~seed:42 () in
  Faults.arm t ~site:"p" (Faults.Prob 0.3);
  Faults.arm t ~site:"other" (Faults.Prob 0.5);
  let interleaved =
    List.init 64 (fun _ ->
        ignore (Faults.fire t "other");
        Faults.fire t "p")
  in
  Alcotest.(check (list bool)) "independent site streams" (pattern 42)
    interleaved

let test_faults_spec () =
  (match Faults.of_spec ~seed:1 "a:nth=2; b:every=3,limit=1" with
  | Error msg -> Alcotest.fail msg
  | Ok t ->
      Alcotest.(check (list bool)) "a:nth=2"
        [ false; true; false ]
        (List.init 3 (fun _ -> Faults.fire t "a"));
      Alcotest.(check (list bool)) "b:every=3,limit=1"
        [ false; false; true; false; false; false ]
        (List.init 6 (fun _ -> Faults.fire t "b"));
      Alcotest.(check int) "total fires" 2 (Faults.total_fires t));
  List.iter
    (fun spec ->
      match Faults.of_spec spec with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S must not parse" spec)
      | Error _ -> ())
    [ "nocolon"; ":nth=1"; "a:"; "a:nth=x"; "a:p=2.0"; "a:frob=1"; "a:nth=0" ]

let test_faults_ambient_scoping () =
  Alcotest.(check bool) "no ambient registry" false
    (Faults.ambient_fire "x");
  let t = Faults.create () in
  Faults.arm t ~site:"x" (Faults.First 1);
  Faults.with_ambient t (fun () ->
      Alcotest.(check bool) "armed inside scope" true (Faults.ambient_fire "x");
      match
        Faults.with_ambient (Faults.create ()) (fun () ->
            Faults.ambient_fire "x")
      with
      | fired -> Alcotest.(check bool) "inner scope shadows" false fired);
  Alcotest.(check bool) "restored outside scope" false
    (Faults.ambient_fire "x");
  (* inject raises the typed exception with the site name. *)
  let t = Faults.create () in
  Faults.arm t ~site:"boom" (Faults.First 1);
  match Faults.inject ~detail:"test" t "boom" with
  | () -> Alcotest.fail "armed inject must raise"
  | exception Faults.Injected { site = "boom"; detail = "test" } -> ()

(* --- Atomic_file --- *)

let scratch =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir = Printf.sprintf "resil-scratch-%d-%d" (Unix.getpid ()) !n in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let test_atomic_file_roundtrip () =
  let dir = scratch () in
  let path = Filename.concat dir "f.json" in
  Atomic_file.write ~path "first";
  Atomic_file.write ~path "second";
  Alcotest.(check (option string)) "last write wins" (Some "second")
    (Atomic_file.read_opt ~path);
  Alcotest.(check bool) "no tmp sibling left" false
    (Sys.file_exists (path ^ ".tmp"))

let test_atomic_file_typed_failures () =
  let dir = scratch () in
  let path = Filename.concat dir "f.json" in
  let t = Faults.create () in
  Faults.arm t ~site:"atomic_file.write" (Faults.Nth 1);
  Faults.with_ambient t (fun () ->
      match Atomic_file.write ~path "doomed" with
      | () -> Alcotest.fail "injected ENOSPC must raise"
      | exception Atomic_file.Write_error { stage = Atomic_file.Write; _ } ->
          ());
  Alcotest.(check bool) "tmp unlinked after write failure" false
    (Sys.file_exists (path ^ ".tmp"));
  let t = Faults.create () in
  Faults.arm t ~site:"atomic_file.fsync" (Faults.Nth 1);
  Faults.with_ambient t (fun () ->
      match Atomic_file.write ~path "doomed" with
      | () -> Alcotest.fail "injected fsync failure must raise"
      | exception Atomic_file.Write_error { stage = Atomic_file.Fsync; _ } ->
          ());
  Alcotest.(check bool) "tmp unlinked after fsync failure" false
    (Sys.file_exists (path ^ ".tmp"));
  (* Missing parent directory: typed Create, not Sys_error. *)
  (match
     Atomic_file.write ~path:(Filename.concat dir "no/such/dir/f") "x"
   with
  | () -> Alcotest.fail "missing parent must raise"
  | exception Atomic_file.Write_error { stage = Atomic_file.Create; _ } -> ());
  (* A failed write never clobbers the previous good copy. *)
  Atomic_file.write ~path "good";
  let t = Faults.create () in
  Faults.arm t ~site:"atomic_file.write" (Faults.Nth 1);
  Faults.with_ambient t (fun () ->
      try Atomic_file.write ~path "bad" with Atomic_file.Write_error _ -> ());
  Alcotest.(check (option string)) "previous copy intact" (Some "good")
    (Atomic_file.read_opt ~path)

let test_atomic_file_crash_before_rename () =
  let dir = scratch () in
  let path = Filename.concat dir "f.json" in
  let t = Faults.create () in
  Faults.arm t ~site:"atomic_file.rename" (Faults.Nth 1);
  Faults.with_ambient t (fun () ->
      match Atomic_file.write ~path "crashing" with
      | () -> Alcotest.fail "injected crash must raise"
      | exception Faults.Injected { site = "atomic_file.rename"; _ } -> ());
  (* A real crash leaves the durable tmp and no destination; so does the
     simulated one. *)
  Alcotest.(check bool) "tmp left behind (crash semantics)" true
    (Sys.file_exists (path ^ ".tmp"));
  Alcotest.(check bool) "destination absent" false (Sys.file_exists path);
  (* The next write (post-"reboot") heals: tmp replaced, rename lands. *)
  Atomic_file.write ~path "recovered";
  Alcotest.(check (option string)) "recovery write lands" (Some "recovered")
    (Atomic_file.read_opt ~path);
  Alcotest.(check bool) "tmp gone after recovery" false
    (Sys.file_exists (path ^ ".tmp"))

(* --- Disk --- *)

let test_disk_free_bytes () =
  (match Disk.free_bytes "." with
  | Some n ->
      Alcotest.(check bool) "headroom non-negative" true (Int64.compare n 0L >= 0)
  | None -> Alcotest.fail "statvfs on cwd must succeed");
  Alcotest.(check bool) "missing path probes as None" true
    (Disk.free_bytes "/no/such/path/anywhere" = None)

let suite =
  ( "resilience",
    [
      Alcotest.test_case "backoff policy validation" `Quick
        test_backoff_policy_validation;
      Alcotest.test_case "backoff deterministic schedules" `Quick
        test_backoff_deterministic;
      Alcotest.test_case "backoff immediate" `Quick test_backoff_immediate;
      Alcotest.test_case "backoff retry loop" `Quick test_backoff_retry;
      Alcotest.test_case "breaker trips and recovers" `Quick
        test_breaker_trips_and_recovers;
      Alcotest.test_case "breaker abandon frees probe" `Quick
        test_breaker_abandon_frees_probe;
      Alcotest.test_case "fault schedules" `Quick test_faults_schedules;
      Alcotest.test_case "fault prob determinism" `Quick
        test_faults_prob_deterministic;
      Alcotest.test_case "fault spec parsing" `Quick test_faults_spec;
      Alcotest.test_case "ambient registry scoping" `Quick
        test_faults_ambient_scoping;
      Alcotest.test_case "atomic file roundtrip" `Quick
        test_atomic_file_roundtrip;
      Alcotest.test_case "atomic file typed failures" `Quick
        test_atomic_file_typed_failures;
      Alcotest.test_case "atomic file crash before rename" `Quick
        test_atomic_file_crash_before_rename;
      Alcotest.test_case "disk free bytes" `Quick test_disk_free_bytes;
    ] )
