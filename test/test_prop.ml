(* Property-based differential harness: every executor in the repository
   that claims to implement a replacement policy must agree on random
   access sequences.

   For every policy in the zoo, seeded random words are run through
   - the pure step function ([Policy.run]),
   - the mutable instance wrapper ([Instance.step]),
   - the explicit Mealy automaton ([Policy.to_mealy]),
   - the cache-set transition system ([Cache_set], hit/miss level),
   - the hardware simulator's set model ([Cq_hwsim.Cache_level]), and
   - Polca over a simulated cache ([Polca.run], the Algorithm 1
     abstraction round-trip: policy word -> block trace -> policy word),
   plus, for a few small policies, the automaton actually learned by
   [Learn.run_simulated].

   Everything is driven by the deterministic splitmix PRNG, so a failure
   reproduces exactly.  PROP_ITERS scales the word count per policy
   (default 100; CI runs a deeper pass). *)

module P = Cq_policy.Policy
module T = Cq_policy.Types
module Instance = Cq_policy.Instance
module Mealy = Cq_automata.Mealy
module Prng = Cq_util.Prng
module Learn = Cq_core.Learn

let iters =
  match Option.bind (Sys.getenv_opt "PROP_ITERS") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> 100

(* One generator per (test, policy) pair: adding a policy to the zoo or a
   test to this file does not perturb the words of the others. *)
let prng_for test_name policy_name =
  Prng.of_int (Hashtbl.hash (test_name, policy_name))

let random_word prng ~n_symbols =
  let len = 1 + Prng.int prng 24 in
  List.init len (fun _ -> Prng.int prng n_symbols)

(* Zoo policies at a fixed small associativity (4 suits every entry,
   including PLRU's power-of-two constraint). *)
let assoc = 4

let zoo_policies () =
  List.filter_map
    (fun e ->
      if e.Cq_policy.Zoo.valid_assoc assoc then
        Some (e.Cq_policy.Zoo.name, e.Cq_policy.Zoo.make assoc)
      else None)
    Cq_policy.Zoo.entries

(* In-order map: the differential executors are stateful, so evaluation
   order is part of the semantics. *)
let map_in_order f inputs =
  List.rev (List.fold_left (fun acc i -> f i :: acc) [] inputs)

let pp_word word = String.concat "," (List.map string_of_int word)

let check_agree ~what ~policy_name word expected actual =
  if expected <> actual then
    Alcotest.fail
      (Printf.sprintf "%s diverges from Policy.run on %s for word [%s]" what
         policy_name (pp_word word))

(* --- Pure step vs mutable instance vs explicit automaton -------------- *)

let test_instance_and_mealy_agree () =
  List.iter
    (fun (name, policy) ->
      let prng = prng_for "instance-mealy" name in
      let machine = P.to_mealy policy in
      for _ = 1 to iters do
        let word = random_word prng ~n_symbols:(T.n_inputs ~assoc) in
        let inputs = List.map (T.input_of_int ~assoc) word in
        let truth = P.run policy inputs in
        let inst = Instance.create policy in
        check_agree ~what:"Instance.step" ~policy_name:name word truth
          (map_in_order (Instance.step inst) inputs);
        check_agree ~what:"Mealy automaton" ~policy_name:name word truth
          (Mealy.run machine word)
      done)
    (zoo_policies ())

(* --- Cache_set vs an instance-driven reference model ------------------ *)

(* The reference is the textbook reading of Definition 2.3, written
   directly against the policy instance: a hit touches the matched line,
   a miss asks the policy for a victim and installs the block there. *)
let reference_cache_run policy blocks =
  let inst = Instance.create policy in
  let content = Array.of_list (Cq_cache.Block.first (P.assoc policy)) in
  let step b =
    let way = ref None in
    Array.iteri
      (fun w x -> if !way = None && Cq_cache.Block.equal x b then way := Some w)
      content;
    match !way with
    | Some w ->
        Instance.touch inst w;
        Cq_cache.Cache_set.Hit
    | None ->
        let victim = Instance.evict inst in
        content.(victim) <- b;
        Cq_cache.Cache_set.Miss
  in
  let results = map_in_order step blocks in
  (results, Array.copy content)

let test_cache_set_matches_reference () =
  List.iter
    (fun (name, policy) ->
      let prng = prng_for "cache-set" name in
      let set = Cq_cache.Cache_set.create policy in
      for _ = 1 to iters do
        (* Blocks from a pool slightly wider than the set: plenty of both
           hits and conflict misses. *)
        let word = random_word prng ~n_symbols:(assoc + 3) in
        let blocks = List.map Cq_cache.Block.of_index word in
        let expected, expected_content = reference_cache_run policy blocks in
        let actual = Cq_cache.Cache_set.run_from_reset set blocks in
        if expected <> actual then
          Alcotest.fail
            (Printf.sprintf "Cache_set diverges on %s for blocks [%s]" name
               (pp_word word));
        if expected_content <> Cq_cache.Cache_set.content set then
          Alcotest.fail
            (Printf.sprintf "Cache_set content diverges on %s for blocks [%s]"
               name (pp_word word))
      done)
    (zoo_policies ())

(* --- Cq_hwsim.Cache_level vs the same reference ----------------------- *)

(* The hardware simulator's set model adds invalid ways (a level starts
   empty) and the fill_touches_policy distinction; the reference below
   mirrors exactly those two rules on top of the policy instance. *)
let reference_level_run policy ~fill_touches_policy lines =
  let inst = Instance.create policy in
  let content = Array.make (P.assoc policy) None in
  let step line =
    let found = ref None in
    Array.iteri
      (fun w b -> if !found = None && b = Some line then found := Some w)
      content;
    match !found with
    | Some w ->
        Instance.touch inst w;
        `Hit
    | None -> (
        let invalid = ref None in
        Array.iteri
          (fun w b -> if !invalid = None && b = None then invalid := Some w)
          content;
        match !invalid with
        | Some w ->
            content.(w) <- Some line;
            if fill_touches_policy then Instance.touch inst w;
            `Fill None
        | None ->
            let victim = Instance.evict inst in
            let evicted = content.(victim) in
            content.(victim) <- Some line;
            `Fill evicted)
  in
  map_in_order step lines

let hwsim_level_run policy ~fill_touches_policy lines =
  let spec =
    {
      Cq_hwsim.Cpu_model.assoc = P.assoc policy;
      slices = 1;
      sets_per_slice = 4;
      hit_latency = 4;
      policy = Cq_hwsim.Cpu_model.Fixed (fun _ -> policy);
      fill_touches_policy;
    }
  in
  let level =
    Cq_hwsim.Cache_level.create ~prng:(Prng.of_int 7) Cq_hwsim.Cpu_model.L1 spec
  in
  let step line =
    match Cq_hwsim.Cache_level.find level ~slice:0 ~set:0 ~line with
    | Some way ->
        Cq_hwsim.Cache_level.hit level ~slice:0 ~set:0 ~way;
        `Hit
    | None ->
        `Fill (Cq_hwsim.Cache_level.fill level ~slice:0 ~set:0 ~line ~use_b:false)
  in
  map_in_order step lines

let test_hwsim_level_matches_reference () =
  List.iter
    (fun (name, policy) ->
      List.iter
        (fun fill_touches_policy ->
          let prng =
            prng_for
              (Printf.sprintf "hwsim-level-%b" fill_touches_policy)
              name
          in
          for _ = 1 to iters do
            let lines = random_word prng ~n_symbols:(assoc + 3) in
            let expected =
              reference_level_run policy ~fill_touches_policy lines
            in
            let actual = hwsim_level_run policy ~fill_touches_policy lines in
            if expected <> actual then
              Alcotest.fail
                (Printf.sprintf
                   "Cache_level (fill_touches_policy=%b) diverges on %s for \
                    lines [%s]"
                   fill_touches_policy name (pp_word lines))
          done)
        [ true; false ])
    (zoo_policies ())

(* --- Polca round-trip (Algorithm 1) ----------------------------------- *)

(* Polca abstracts the block-level cache back into the policy alphabet;
   composed with the policy-induced cache this must be the identity on
   output words (Theorem 3.1 / Corollary 3.4). *)
let test_polca_roundtrip_identity () =
  List.iter
    (fun (name, policy) ->
      let prng = prng_for "polca-roundtrip" name in
      let polca = Cq_core.Polca.create (Cq_cache.Oracle.of_policy policy) in
      let machine = P.to_mealy policy in
      (* Each Polca word replays probe fan-outs, so go a bit easier. *)
      for _ = 1 to max 1 (iters / 4) do
        let word = random_word prng ~n_symbols:(T.n_inputs ~assoc) in
        check_agree ~what:"Polca round-trip" ~policy_name:name word
          (Mealy.run machine word)
          (Cq_core.Polca.run polca word)
      done)
    (zoo_policies ())

(* --- The learned automaton -------------------------------------------- *)

(* End-to-end: the automaton L* actually learns through Polca from a
   simulated cache agrees with the ground-truth policy on random words
   (not only on the conformance suite that drove the learning). *)
let test_learned_automaton_agrees () =
  List.iter
    (fun (name, assoc) ->
      let policy = Cq_policy.Zoo.make_exn ~name ~assoc in
      match Learn.run_simulated ~identify:false policy with
      | Learn.Partial { failure; _ } ->
          Alcotest.fail
            (Fmt.str "learning %s-%d failed: %a" name assoc Learn.pp_failure
               failure)
      | Learn.Complete report ->
          let machine = report.Learn.machine in
          let prng = prng_for "learned" name in
          for _ = 1 to iters do
            let word = random_word prng ~n_symbols:(T.n_inputs ~assoc) in
            let inputs = List.map (T.input_of_int ~assoc) word in
            check_agree ~what:"learned automaton" ~policy_name:name word
              (P.run policy inputs)
              (Mealy.run machine word)
          done)
    [ ("FIFO", 3); ("LRU", 2); ("PLRU", 2); ("MRU", 3) ]

(* Soundness of the symmetry quotient: for every policy in the zoo, the
   machine learned with the quotient on is trace-equivalent to the
   ground-truth automaton.  The quotient may only change *how many
   queries* the table spends, never *what* it learns — an alias that
   survives verification but alters the machine would show up here.
   The quotient run also validates against the policy axioms, which
   re-checks the merge witness with anchored product walks.

   Equivalence is checked against the ground truth rather than against a
   direct (quotient-off) run because the direct baseline is not always
   sound at conformance depth 1: BIP-3's minimal machine has 24 states
   but plain Wp-depth-1 accepts a wrong 6-state hypothesis, while the
   quotient's sweep suffix refines the table far enough to learn the
   true machine.  Where the direct run is sound the two coincide (the
   assoc-scaling bench asserts that pairwise). *)
let test_quotient_learns_truth () =
  List.iter
    (fun (name, assoc) ->
      let policy = Cq_policy.Zoo.make_exn ~name ~assoc in
      match
        Learn.run_simulated ~identify:false ~quotient:true ~validate:true
          policy
      with
      | Learn.Partial { failure; _ } ->
          Alcotest.fail
            (Fmt.str "quotient learning %s-%d failed: %a" name assoc
               Learn.pp_failure failure)
      | Learn.Complete report ->
          let truth = P.to_mealy policy in
          if not (Mealy.equivalent truth report.Learn.machine) then
            Alcotest.fail
              (Fmt.str
                 "%s-%d: quotient-learned machine differs from ground truth"
                 name assoc))
    [
      ("FIFO", 4); ("LRU", 4); ("PLRU", 4); ("MRU", 4); ("LIP", 4);
      ("BIP", 3); ("SRRIP-HP", 3); ("SRRIP-FP", 3); ("BRRIP", 3);
      ("New1", 3); ("New2", 3);
    ]

let suite =
  ( "prop",
    [
      Alcotest.test_case "instance & automaton agree with Policy.run" `Quick
        test_instance_and_mealy_agree;
      Alcotest.test_case "Cache_set matches the reference model" `Quick
        test_cache_set_matches_reference;
      Alcotest.test_case "hwsim Cache_level matches the reference model" `Quick
        test_hwsim_level_matches_reference;
      Alcotest.test_case "Polca round-trip is the identity" `Quick
        test_polca_roundtrip_identity;
      Alcotest.test_case "learned automata agree on random words" `Quick
        test_learned_automaton_agrees;
      Alcotest.test_case "quotient learning recovers ground truth (full zoo)"
        `Slow test_quotient_learns_truth;
    ] )
