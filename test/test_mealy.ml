(* Tests for cq_automata.Mealy: construction, runs, reachable enumeration,
   minimization, equivalence, access sequences, DOT export. *)

module Mealy = Cq_automata.Mealy

(* The LRU-2 machine of Example 2.2: state = line to evict next. *)
let lru2 =
  Mealy.make ~init:0 ~n_inputs:3
    ~next:[| [| 1; 0; 1 |]; [| 1; 0; 0 |] |]
    ~out:[| [| "_"; "_"; "0" |]; [| "_"; "_"; "1" |] |]

let test_make_validation () =
  Alcotest.check_raises "dangling transition"
    (Invalid_argument "Mealy: dangling transition") (fun () ->
      ignore (Mealy.make ~init:0 ~n_inputs:1 ~next:[| [| 5 |] |] ~out:[| [| 0 |] |]));
  Alcotest.check_raises "bad initial state"
    (Invalid_argument "Mealy: bad initial state") (fun () ->
      ignore (Mealy.make ~init:3 ~n_inputs:1 ~next:[| [| 0 |] |] ~out:[| [| 0 |] |]));
  Alcotest.check_raises "row size mismatch"
    (Invalid_argument "Mealy: transition row size mismatch") (fun () ->
      ignore (Mealy.make ~init:0 ~n_inputs:2 ~next:[| [| 0 |] |] ~out:[| [| 0 |] |]))

let test_run_example_2_2 () =
  (* Accessing Ln(0) makes line 1 the next victim. *)
  Alcotest.(check (list string)) "outputs" [ "_"; "1"; "_"; "0" ]
    (Mealy.run lru2 [ 0; 2; 1; 2 ])

let test_step_out_of_range () =
  Alcotest.check_raises "input range" (Invalid_argument "Mealy.step: input out of range")
    (fun () -> ignore (Mealy.step lru2 0 3))

let test_state_after () =
  Alcotest.(check int) "after Ln(0)" 1 (Mealy.state_after lru2 [ 0 ]);
  Alcotest.(check int) "after Ln(0) Ln(1)" 0 (Mealy.state_after lru2 [ 0; 1 ])

let test_of_fun_counter () =
  (* A mod-5 counter with one input. *)
  let m =
    Mealy.of_fun ~init:0 ~n_inputs:1
      ~step:(fun s _ -> ((s + 1) mod 5, s))
      ~max_states:100
  in
  Alcotest.(check int) "5 states" 5 (Mealy.n_states m);
  Alcotest.(check (list int)) "outputs cycle" [ 0; 1; 2; 3; 4; 0 ]
    (Mealy.run m [ 0; 0; 0; 0; 0; 0 ])

let test_of_fun_budget () =
  Alcotest.check_raises "budget enforced"
    (Failure "Mealy.of_fun: more than 3 reachable states") (fun () ->
      ignore
        (Mealy.of_fun ~init:0 ~n_inputs:1
           ~step:(fun s _ -> (s + 1, ()))
           ~max_states:3))

let test_minimize_collapses () =
  (* Two redundant copies of a 1-state machine. *)
  let m =
    Mealy.make ~init:0 ~n_inputs:1 ~next:[| [| 1 |]; [| 0 |] |]
      ~out:[| [| "x" |]; [| "x" |] |]
  in
  let mm = Mealy.minimize m in
  Alcotest.(check int) "collapsed" 1 (Mealy.n_states mm);
  Alcotest.(check bool) "still equivalent" true (Mealy.equivalent m mm)

let test_minimize_drops_unreachable () =
  let m =
    Mealy.make ~init:0 ~n_inputs:1 ~next:[| [| 0 |]; [| 1 |] |]
      ~out:[| [| "a" |]; [| "b" |] |]
  in
  Alcotest.(check int) "unreachable dropped" 1 (Mealy.n_states (Mealy.minimize m))

let test_counterexample_shortest () =
  (* Machines agreeing on the first input, differing on the second step. *)
  let a =
    Mealy.make ~init:0 ~n_inputs:1 ~next:[| [| 1 |]; [| 1 |] |]
      ~out:[| [| "x" |]; [| "y" |] |]
  in
  let b =
    Mealy.make ~init:0 ~n_inputs:1 ~next:[| [| 1 |]; [| 1 |] |]
      ~out:[| [| "x" |]; [| "z" |] |]
  in
  Alcotest.(check (option (list int))) "length-2 cex" (Some [ 0; 0 ])
    (Mealy.find_counterexample a b);
  Alcotest.(check (option (list int))) "self equivalent" None
    (Mealy.find_counterexample a a)

let test_counterexample_from_states () =
  (* Distinguish the two states of LRU-2: Evct outputs differ. *)
  Alcotest.(check (option (list int))) "Evct separates" (Some [ 2 ])
    (Mealy.find_counterexample ~from_a:(Some 0) ~from_b:(Some 1) lru2 lru2)

let test_isomorphic () =
  (* Same machine with states renumbered. *)
  let renamed =
    Mealy.make ~init:1 ~n_inputs:3
      ~next:[| [| 0; 1; 1 |]; [| 0; 1; 0 |] |]
      ~out:[| [| "_"; "_"; "1" |]; [| "_"; "_"; "0" |] |]
  in
  Alcotest.(check bool) "isomorphic" true (Mealy.isomorphic lru2 renamed)

let test_access_sequences () =
  let acc = Mealy.access_sequences lru2 in
  Alcotest.(check (option (list int))) "init" (Some []) acc.(0);
  (match acc.(1) with
  | Some w -> Alcotest.(check int) "state 1 reached" 1 (Mealy.state_after lru2 w)
  | None -> Alcotest.fail "state 1 unreachable");
  (* Unreachable states get None. *)
  let m =
    Mealy.make ~init:0 ~n_inputs:1 ~next:[| [| 0 |]; [| 1 |] |]
      ~out:[| [| 0 |]; [| 1 |] |]
  in
  Alcotest.(check (option (list int))) "unreachable" None (Mealy.access_sequences m).(1)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_to_dot () =
  let dot = Mealy.to_dot ~input_label:string_of_int ~output_label:Fun.id lru2 in
  Alcotest.(check bool) "digraph" true (String.sub dot 0 7 = "digraph");
  Alcotest.(check bool) "initial edge" true (contains ~needle:"__start -> s0" dot);
  Alcotest.(check bool) "labelled transition" true (contains ~needle:"s0 -> s1" dot)

(* --- qcheck ------------------------------------------------------------ *)

(* Random Mealy machine generator: (n_states, n_inputs, tables). *)
let gen_mealy =
  QCheck.Gen.(
    let* n = 1 -- 8 in
    let* k = 1 -- 4 in
    let* outs = list_size (return (n * k)) (0 -- 2) in
    let* nexts = list_size (return (n * k)) (0 -- (n - 1)) in
    let next =
      Array.init n (fun s -> Array.init k (fun i -> List.nth nexts ((s * k) + i)))
    in
    let out =
      Array.init n (fun s -> Array.init k (fun i -> List.nth outs ((s * k) + i)))
    in
    return (Mealy.make ~init:0 ~n_inputs:k ~next ~out))

let arb_mealy = QCheck.make gen_mealy

let gen_word k = QCheck.Gen.(list_size (1 -- 12) (0 -- (k - 1)))

let prop_minimize_equivalent =
  QCheck.Test.make ~name:"minimize preserves traces" ~count:200 arb_mealy
    (fun m -> Mealy.equivalent m (Mealy.minimize m))

let prop_minimize_idempotent =
  QCheck.Test.make ~name:"minimize is idempotent (state count)" ~count:200
    arb_mealy (fun m ->
      let m1 = Mealy.minimize m in
      Mealy.n_states (Mealy.minimize m1) = Mealy.n_states m1)

let prop_cex_is_real =
  QCheck.Test.make ~name:"counterexamples witness difference" ~count:200
    QCheck.(pair arb_mealy arb_mealy)
    (fun (a, b) ->
      QCheck.assume (Mealy.n_inputs a = Mealy.n_inputs b);
      match Mealy.find_counterexample a b with
      | None -> Mealy.equivalent a b
      | Some w -> Mealy.run a w <> Mealy.run b w)

let prop_run_length =
  QCheck.Test.make ~name:"output word length = input word length" ~count:200
    arb_mealy (fun m ->
      let w = QCheck.Gen.generate1 (gen_word (Mealy.n_inputs m)) in
      List.length (Mealy.run m w) = List.length w)

let prop_access_sequences_reach =
  QCheck.Test.make ~name:"access sequences reach their states" ~count:200
    arb_mealy (fun m ->
      let acc = Mealy.access_sequences m in
      Array.for_all Fun.id
        (Array.mapi
           (fun s w ->
             match w with None -> true | Some w -> Mealy.state_after m w = s)
           acc))

(* --- Compiled evaluation: differential fuzz against the reference --- *)

let gen_mealy_and_word =
  QCheck.Gen.(
    let* m = gen_mealy in
    let* w = list_size (0 -- 24) (0 -- (Mealy.n_inputs m - 1)) in
    return (m, w))

let arb_mealy_and_word = QCheck.make gen_mealy_and_word

let prop_compiled_run_agrees =
  QCheck.Test.make ~name:"compiled_run matches Mealy.run" ~count:500
    arb_mealy_and_word (fun (m, w) ->
      let c = Mealy.compile m in
      Mealy.compiled_run c w = Mealy.run m w
      && Mealy.compiled_state_after c w = Mealy.state_after m w)

let prop_compiled_agrees_verdict =
  (* [agrees] accepts exactly the reference trace, and on a corrupted
     trace [first_disagreement] points at the corrupted position. *)
  QCheck.Test.make ~name:"agrees/first_disagreement verdicts" ~count:500
    arb_mealy_and_word (fun (m, w) ->
      let c = Mealy.compile m in
      let outs = Mealy.run m w in
      Mealy.agrees c w outs
      && Mealy.first_disagreement c w outs = None
      &&
      match outs with
      | [] -> true
      | _ ->
          let i = List.length outs / 2 in
          let corrupted = List.mapi (fun j o -> if j = i then o + 7 else o) outs in
          (not (Mealy.agrees c w corrupted))
          && Mealy.first_disagreement c w corrupted = Some i)

let suite =
  ( "mealy",
    [
      Alcotest.test_case "make validation" `Quick test_make_validation;
      Alcotest.test_case "run (Example 2.2)" `Quick test_run_example_2_2;
      Alcotest.test_case "step range" `Quick test_step_out_of_range;
      Alcotest.test_case "state_after" `Quick test_state_after;
      Alcotest.test_case "of_fun counter" `Quick test_of_fun_counter;
      Alcotest.test_case "of_fun budget" `Quick test_of_fun_budget;
      Alcotest.test_case "minimize collapses" `Quick test_minimize_collapses;
      Alcotest.test_case "minimize unreachable" `Quick test_minimize_drops_unreachable;
      Alcotest.test_case "shortest counterexample" `Quick test_counterexample_shortest;
      Alcotest.test_case "cex from states" `Quick test_counterexample_from_states;
      Alcotest.test_case "isomorphic" `Quick test_isomorphic;
      Alcotest.test_case "access sequences" `Quick test_access_sequences;
      Alcotest.test_case "to_dot" `Quick test_to_dot;
      QCheck_alcotest.to_alcotest prop_minimize_equivalent;
      QCheck_alcotest.to_alcotest prop_minimize_idempotent;
      QCheck_alcotest.to_alcotest prop_cex_is_real;
      QCheck_alcotest.to_alcotest prop_run_length;
      QCheck_alcotest.to_alcotest prop_access_sequences_reach;
      QCheck_alcotest.to_alcotest prop_compiled_run_agrees;
      QCheck_alcotest.to_alcotest prop_compiled_agrees_verdict;
    ] )
