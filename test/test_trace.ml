(* Tests for the observability layer (Cq_util.Trace + Cq_util.Metrics):
   span nesting and ordering, ring-buffer overflow accounting, exporter
   well-formedness (every emitted array element / line is re-parsed by an
   independent JSON reader), the disabled-mode strict no-op (including
   zero allocations), histogram bucket boundaries and merging, and the
   registry-backed stats invariant that legacy report fields and the
   exported registry cannot disagree. *)

module Trace = Cq_util.Trace
module Metrics = Cq_util.Metrics

(* --- A minimal JSON reader, the exporters' adversarial counterpart ---- *)
(* The repo carries no JSON dependency (the exporters hand-roll their
   output), so validation needs its own parser.  Strict: rejects trailing
   garbage, raw control characters in strings, malformed escapes. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' ->
              Buffer.add_char buf '"';
              advance ();
              go ()
          | Some '\\' ->
              Buffer.add_char buf '\\';
              advance ();
              go ()
          | Some '/' ->
              Buffer.add_char buf '/';
              advance ();
              go ()
          | Some 'b' ->
              Buffer.add_char buf '\b';
              advance ();
              go ()
          | Some 'f' ->
              Buffer.add_char buf '\012';
              advance ();
              go ()
          | Some 'n' ->
              Buffer.add_char buf '\n';
              advance ();
              go ()
          | Some 'r' ->
              Buffer.add_char buf '\r';
              advance ();
              go ()
          | Some 't' ->
              Buffer.add_char buf '\t';
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              let code =
                match int_of_string_opt ("0x" ^ hex) with
                | Some c -> c
                | None -> fail "malformed \\u escape"
              in
              (* The exporters only \u-escape control bytes, so the code
                 point always fits one byte. *)
              Buffer.add_char buf (Char.chr (code land 0xff));
              pos := !pos + 4;
              go ()
          | _ -> fail "unknown escape")
      | Some c when Char.code c < 0x20 -> fail "raw control character in string"
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numeric = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while match peek () with Some c when numeric c -> true | _ -> false do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> f
    | None -> fail (Printf.sprintf "malformed number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' -> parse_obj ()
    | Some '[' -> parse_arr ()
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then (
      advance ();
      Obj [])
    else
      let fields = ref [] in
      let rec field () =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        fields := (k, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            field ()
        | Some '}' -> advance ()
        | _ -> fail "expected ',' or '}' in object"
      in
      field ();
      Obj (List.rev !fields)
  and parse_arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then (
      advance ();
      Arr [])
    else
      let items = ref [] in
      let rec element () =
        items := parse_value () :: !items;
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            element ()
        | Some ']' -> advance ()
        | _ -> fail "expected ',' or ']' in array"
      in
      element ();
      Arr (List.rev !items)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field name = function Obj fields -> List.assoc_opt name fields | _ -> None

let str_field name j =
  match field name j with Some (Str s) -> Some s | _ -> None

(* Every test leaves tracing off, whatever happens inside. *)
let with_tracing ?capacity f =
  Trace.enable ?capacity ();
  Fun.protect ~finally:Trace.disable f

(* --- Spans ------------------------------------------------------------ *)

let test_span_nesting () =
  with_tracing (fun () ->
      let r =
        Trace.with_span "outer" (fun () ->
            Trace.with_span ~cat:"unit" "inner" (fun () ->
                Trace.instant "tick";
                17))
      in
      Alcotest.(check int) "value passes through" 17 r;
      match Trace.events () with
      | [ tick; inner; outer ] ->
          (* Spans are recorded at completion, so the instant inside the
             innermost span lands first and the outermost span last. *)
          Alcotest.(check string) "instant first" "tick" tick.Trace.name;
          Alcotest.(check string) "inner second" "inner" inner.Trace.name;
          Alcotest.(check string) "outer last" "outer" outer.Trace.name;
          Alcotest.(check int) "outer depth" 0 outer.Trace.depth;
          Alcotest.(check int) "inner depth" 1 inner.Trace.depth;
          Alcotest.(check int) "instant depth" 2 tick.Trace.depth;
          Alcotest.(check bool) "inner within outer" true
            (inner.Trace.ts_us >= outer.Trace.ts_us
            && inner.Trace.ts_us +. inner.Trace.dur_us
               <= outer.Trace.ts_us +. outer.Trace.dur_us +. 1.0)
      | evs -> Alcotest.fail (Printf.sprintf "expected 3 events, got %d" (List.length evs)))

let test_span_records_on_raise () =
  with_tracing (fun () ->
      (try Trace.with_span "doomed" (fun () -> failwith "boom")
       with Failure _ -> ());
      match Trace.events () with
      | [ ev ] ->
          Alcotest.(check string) "span recorded despite raise" "doomed" ev.Trace.name;
          Alcotest.(check int) "depth restored" 0 ev.Trace.depth
      | _ -> Alcotest.fail "expected exactly one event");
  (* The depth counter must have been restored by the raise path: a new
     top-level span still records at depth 0. *)
  with_tracing (fun () ->
      Trace.with_span "after" (fun () -> ());
      match Trace.events () with
      | [ ev ] -> Alcotest.(check int) "depth 0 after raise" 0 ev.Trace.depth
      | _ -> Alcotest.fail "expected exactly one event")

(* --- Ring buffer ------------------------------------------------------ *)

let test_ring_overflow () =
  with_tracing ~capacity:8 (fun () ->
      for i = 0 to 19 do
        Trace.instant (Printf.sprintf "i%d" i)
      done;
      Alcotest.(check int) "recorded counts everything" 20 (Trace.recorded ());
      Alcotest.(check int) "dropped = recorded - capacity" 12 (Trace.dropped ());
      let names = List.map (fun ev -> ev.Trace.name) (Trace.events ()) in
      Alcotest.(check (list string))
        "ring keeps the newest events, oldest surviving first"
        [ "i12"; "i13"; "i14"; "i15"; "i16"; "i17"; "i18"; "i19" ]
        names;
      Trace.clear ();
      Alcotest.(check int) "clear resets recorded" 0 (Trace.recorded ());
      Alcotest.(check int) "clear resets dropped" 0 (Trace.dropped ());
      Alcotest.(check (list string))
        "clear empties the ring" []
        (List.map (fun ev -> ev.Trace.name) (Trace.events ())))

(* --- Exporters -------------------------------------------------------- *)

(* Argument values chosen to stress the hand-rolled string escaping. *)
let nasty_args =
  [
    ("quote", "a\"b");
    ("backslash", "a\\b");
    ("newline", "line1\nline2");
    ("control", "bell\001tab\t");
  ]

let record_sample_events () =
  Trace.with_span ~cat:"test" ~args:nasty_args "nasty \"span\"" (fun () ->
      Trace.with_span "child" (fun () -> Trace.instant ~args:[ ("k", "v") ] "mark"));
  Trace.counter "queries" 42.0

let test_chrome_export_wellformed () =
  with_tracing (fun () ->
      record_sample_events ();
      let events =
        match parse_json (Trace.to_chrome_json ()) with
        | Arr events -> events
        | _ -> Alcotest.fail "chrome trace is not a JSON array"
      in
      Alcotest.(check int) "one element per event" (List.length (Trace.events ()))
        (List.length events);
      List.iter
        (fun ev ->
          List.iter
            (fun key ->
              if field key ev = None then
                Alcotest.fail (Printf.sprintf "event lacks %S" key))
            [ "name"; "cat"; "ph"; "ts"; "pid"; "tid" ])
        events;
      let by_name name =
        match
          List.find_opt (fun ev -> str_field "name" ev = Some name) events
        with
        | Some ev -> ev
        | None -> Alcotest.fail (Printf.sprintf "no event named %S" name)
      in
      let span = by_name "nasty \"span\"" in
      Alcotest.(check (option string)) "span is a complete event" (Some "X")
        (str_field "ph" span);
      Alcotest.(check bool) "span has a duration" true (field "dur" span <> None);
      (match field "args" span with
      | Some args ->
          List.iter
            (fun (k, v) ->
              Alcotest.(check (option string))
                (Printf.sprintf "arg %s round-trips" k)
                (Some v) (str_field k args))
            nasty_args
      | None -> Alcotest.fail "span lost its args");
      Alcotest.(check (option string)) "instant is ph i" (Some "i")
        (str_field "ph" (by_name "mark"));
      let counter = by_name "queries" in
      Alcotest.(check (option string)) "counter is ph C" (Some "C")
        (str_field "ph" counter))

let test_jsonl_export_wellformed () =
  with_tracing (fun () ->
      record_sample_events ();
      let lines =
        String.split_on_char '\n' (Trace.to_jsonl ())
        |> List.filter (fun l -> String.trim l <> "")
      in
      Alcotest.(check int) "one line per event" (List.length (Trace.events ()))
        (List.length lines);
      List.iter
        (fun line ->
          match parse_json line with
          | Obj _ -> ()
          | _ -> Alcotest.fail "JSONL line is not an object")
        lines)

let test_export_files () =
  let chrome = Filename.temp_file "cq_trace" ".json" in
  let jsonl = Filename.temp_file "cq_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove chrome;
      Sys.remove jsonl)
    (fun () ->
      with_tracing (fun () ->
          record_sample_events ();
          Trace.export_chrome ~path:chrome ();
          Trace.export_jsonl ~path:jsonl ());
      let read path = In_channel.with_open_text path In_channel.input_all in
      (match parse_json (read chrome) with
      | Arr (_ :: _) -> ()
      | _ -> Alcotest.fail "exported chrome trace is not a non-empty array");
      match parse_json (String.trim (read jsonl) |> String.split_on_char '\n' |> List.hd) with
      | Obj _ -> ()
      | _ -> Alcotest.fail "exported JSONL first line is not an object")

(* --- Disabled mode ---------------------------------------------------- *)

let test_disabled_strict_noop () =
  Trace.disable ();
  let r = Trace.with_span "ignored" (fun () -> 9) in
  Alcotest.(check int) "with_span is identity on the result" 9 r;
  Trace.instant "ignored";
  Trace.counter "ignored" 1.0;
  Alcotest.(check int) "nothing recorded" 0 (Trace.recorded ());
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped ());
  Alcotest.(check bool) "no events" true (Trace.events () = []);
  match parse_json (Trace.to_chrome_json ()) with
  | Arr [] -> ()
  | _ -> Alcotest.fail "disabled chrome trace is not an empty JSON array"

let test_disabled_zero_allocation () =
  Trace.disable ();
  let body = fun () -> () in
  (* Warm up so any one-time setup is outside the measured window. *)
  for _ = 1 to 100 do
    Trace.with_span "hot" body
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Trace.with_span "hot" body
  done;
  let allocated = Gc.minor_words () -. before in
  (* A handful of words of slack covers the boxed floats the measurement
     itself allocates; 10k disabled spans must not allocate beyond that. *)
  Alcotest.(check bool)
    (Printf.sprintf "disabled spans allocate nothing (saw %.0f words)" allocated)
    true (allocated < 64.0)

(* --- Histograms ------------------------------------------------------- *)

let test_histogram_buckets () =
  let reg = Metrics.create () in
  let h = Metrics.histogram ~buckets:4 ~base:2.0 ~start:1.0 reg "h" in
  (* Bucket 0: (-inf, 1]; bucket 1: (1, 2]; bucket 2: (2, 4]; bucket 3:
     (4, inf).  Non-positive and NaN observations land in bucket 0. *)
  Alcotest.(check (option (float 1e-9))) "bound 0" (Some 1.0)
    (Metrics.bucket_upper_bound h 0);
  Alcotest.(check (option (float 1e-9))) "bound 1" (Some 2.0)
    (Metrics.bucket_upper_bound h 1);
  Alcotest.(check (option (float 1e-9))) "bound 2" (Some 4.0)
    (Metrics.bucket_upper_bound h 2);
  Alcotest.(check (option (float 1e-9))) "last bucket unbounded" None
    (Metrics.bucket_upper_bound h 3);
  Alcotest.check_raises "out-of-range bound"
    (Invalid_argument "Metrics.bucket_upper_bound: index out of range")
    (fun () -> ignore (Metrics.bucket_upper_bound h 4));
  List.iter (Metrics.observe h)
    [ -5.0; 0.0; Float.nan; 1.0; 1.5; 2.0; 2.1; 4.0; 100.0 ];
  Alcotest.(check int) "count equals observations" 9 (Metrics.hist_count h);
  Alcotest.(check (array int)) "boundary values land in-or-below"
    [| 4; 2; 2; 1 |] (Metrics.bucket_counts h)

let test_histogram_merge () =
  let reg = Metrics.create () in
  let a = Metrics.histogram ~buckets:3 reg "a" in
  let b = Metrics.histogram ~buckets:3 reg "b" in
  List.iter (Metrics.observe a) [ 0.5; 3.0 ];
  List.iter (Metrics.observe b) [ 1.5; 3.0; 10.0 ];
  Metrics.merge_histogram ~into:a b;
  Alcotest.(check int) "merged count" 5 (Metrics.hist_count a);
  Alcotest.(check (float 1e-9)) "merged sum" 18.0 (Metrics.hist_sum a);
  Alcotest.(check int) "source untouched" 3 (Metrics.hist_count b);
  let odd = Metrics.histogram ~buckets:7 reg "odd" in
  Alcotest.(check bool) "shape mismatch raises" true
    (match Metrics.merge_histogram ~into:a odd with
    | () -> false
    | exception Invalid_argument _ -> true)

(* --- Registry --------------------------------------------------------- *)

let test_registry_idempotent () =
  let reg = Metrics.create () in
  let c1 = Metrics.counter reg "layer.queries" in
  let c2 = Metrics.counter reg "layer.queries" in
  Metrics.incr c1;
  Metrics.add c2 4;
  Alcotest.(check int) "same handle through both registrations" 5
    (Metrics.value c1);
  Alcotest.(check bool) "kind mismatch raises" true
    (match Metrics.gauge reg "layer.queries" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_registry_json () =
  let reg = Metrics.create () in
  Metrics.add (Metrics.counter reg "b.count") 3;
  Metrics.set (Metrics.gauge reg "a.depth") 2.5;
  Metrics.observe (Metrics.histogram ~buckets:3 reg "c.lat") 1.5;
  let j = parse_json (Metrics.to_json reg) in
  (match j with Obj _ -> () | _ -> Alcotest.fail "to_json is not an object");
  (match field "b.count" j with
  | Some (Num v) -> Alcotest.(check (float 0.0)) "counter value" 3.0 v
  | _ -> Alcotest.fail "counter missing from JSON");
  (match field "a.depth" j with
  | Some (Num v) -> Alcotest.(check (float 0.0)) "gauge value" 2.5 v
  | _ -> Alcotest.fail "gauge missing from JSON");
  match field "c.lat" j with
  | Some (Obj _) -> ()
  | _ -> Alcotest.fail "histogram missing from JSON"

(* Legacy report fields are views over the registry: a stats record
   registered into a registry must be indistinguishable from reading the
   registry's snapshot. *)
let test_stats_fields_are_registry_views () =
  let reg = Metrics.create () in
  let stats = Cq_cache.Oracle.fresh_stats ~registry:reg ~prefix:"oracle" () in
  Metrics.add stats.Cq_cache.Oracle.queries 7;
  Metrics.add stats.Cq_cache.Oracle.block_accesses 21;
  Metrics.observe stats.Cq_cache.Oracle.batch_depth 3.0;
  let snap = Metrics.snapshot reg in
  (match List.assoc_opt "oracle.queries" snap with
  | Some (Metrics.Counter_value v) ->
      Alcotest.(check int) "field and registry agree" 7 v
  | _ -> Alcotest.fail "oracle.queries not a registry counter");
  (match List.assoc_opt "oracle.block_accesses" snap with
  | Some (Metrics.Counter_value v) -> Alcotest.(check int) "accesses" 21 v
  | _ -> Alcotest.fail "oracle.block_accesses not a registry counter");
  match List.assoc_opt "oracle.batch_depth" snap with
  | Some (Metrics.Histogram_value h) ->
      Alcotest.(check int) "histogram observation visible" 1 h.Metrics.hs_count
  | _ -> Alcotest.fail "oracle.batch_depth not a registry histogram"

let suite =
  ( "trace",
    [
      Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting;
      Alcotest.test_case "span records on raise" `Quick test_span_records_on_raise;
      Alcotest.test_case "ring-buffer overflow" `Quick test_ring_overflow;
      Alcotest.test_case "chrome exporter well-formed" `Quick
        test_chrome_export_wellformed;
      Alcotest.test_case "jsonl exporter well-formed" `Quick
        test_jsonl_export_wellformed;
      Alcotest.test_case "file exporters" `Quick test_export_files;
      Alcotest.test_case "disabled mode is a strict no-op" `Quick
        test_disabled_strict_noop;
      Alcotest.test_case "disabled mode allocates nothing" `Quick
        test_disabled_zero_allocation;
      Alcotest.test_case "histogram bucket boundaries" `Quick test_histogram_buckets;
      Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
      Alcotest.test_case "registry idempotency" `Quick test_registry_idempotent;
      Alcotest.test_case "registry JSON export" `Quick test_registry_json;
      Alcotest.test_case "stats fields are registry views" `Quick
        test_stats_fields_are_registry_views;
    ] )
