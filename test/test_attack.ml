(* Security-analysis tests: eviction synthesis, stealthy sequences and
   leakage measures over the whole zoo, each synthesized word validated
   dynamically — replayed byte-for-byte through the three Replay paths
   and through hwsim — plus determinism, the BIP-below-LRU leakage
   ordering, the DOT round trip, the QCheck eviction property and the
   daemon's analyze verb. *)

module Attack = Cq_analysis.Attack
module Mealy = Cq_automata.Mealy
module Types = Cq_policy.Types
module P = Cq_policy.Policy
module Zoo = Cq_policy.Zoo
module Replay = Cq_workload.Replay

let zoo_at assoc =
  List.filter_map
    (fun e ->
      if e.Zoo.valid_assoc assoc then Some (e.Zoo.name, e.Zoo.make assoc)
      else None)
    Zoo.entries

(* Truth machines and reports are expensive at assoc 8 (BIP-8 has 161k
   states); build each at most once across the whole suite. *)
let mealy_cache : (string * int, Types.output Mealy.t) Hashtbl.t =
  Hashtbl.create 31

let mealy_of name assoc =
  match Hashtbl.find_opt mealy_cache (name, assoc) with
  | Some m -> m
  | None ->
      let m = P.to_mealy (Zoo.make_exn ~name ~assoc) in
      Hashtbl.replace mealy_cache (name, assoc) m;
      m

let report_cache : (string * int, Attack.report) Hashtbl.t = Hashtbl.create 31

let report_of name assoc =
  match Hashtbl.find_opt report_cache (name, assoc) with
  | Some r -> r
  | None ->
      let r = Attack.analyze ~name (mealy_of name assoc) in
      Hashtbl.replace report_cache (name, assoc) r;
      r

let ok_or_fail label = function
  | Ok () -> ()
  | Error msg -> Alcotest.fail (label ^ ": " ^ msg)

(* --- eviction synthesis + full dynamic validation ----------------------- *)

let check_policy assoc (name, p) =
  let ctx = Printf.sprintf "%s-%d" name assoc in
  let r = report_of name assoc in
  Alcotest.(check int) (ctx ^ ": every line evictable") assoc
    (List.length r.Attack.evictions);
  Alcotest.(check bool)
    (ctx ^ ": eviction set within assoc+1")
    true
    (r.Attack.eviction_set_size >= 1
    && r.Attack.eviction_set_size <= assoc + 1);
  Alcotest.(check bool) (ctx ^ ": a stealthy sequence exists") true
    (r.Attack.stealthy <> None);
  ok_or_fail (ctx ^ " replay") (Attack.verify p r);
  ok_or_fail (ctx ^ " hwsim") (Attack.verify_hwsim p r);
  r

let test_zoo_4 () = List.iter (fun e -> ignore (check_policy 4 e)) (zoo_at 4)
let test_zoo_8 () = List.iter (fun e -> ignore (check_policy 8 e)) (zoo_at 8)

(* --- stealth semantics --------------------------------------------------- *)

let test_stealthy_shapes () =
  let find name assoc =
    let r = report_of name assoc in
    (r, Option.get r.Attack.stealthy)
  in
  (* LRU admits a repeatable refresh cycle: reload the target, feed the
     misses to the other lines forever. *)
  let _, lru = find "LRU" 4 in
  Alcotest.(check bool) "LRU cycle is repeatable" true lru.Attack.repeatable;
  (* FIFO does not: hits never move the round-robin pointer, so the
     pointer inevitably sweeps over the target.  The analysis must fall
     back to a one-shot word rather than claim a cycle. *)
  let r, fifo = find "FIFO" 4 in
  Alcotest.(check bool) "FIFO stealth is one-shot" false
    fifo.Attack.repeatable;
  List.iter
    (fun (st : Attack.stealthy) ->
      let body = st.Attack.setup @ st.Attack.body in
      Alcotest.(check bool) "body has a controlled miss" true
        (List.mem 4 body);
      Alcotest.(check bool) "body reloads the target" true
        (List.mem st.Attack.starget st.Attack.body))
    r.Attack.stealthies

(* --- determinism --------------------------------------------------------- *)

let test_determinism () =
  List.iter
    (fun (name, p) ->
      let r1 = Attack.analyze_policy p in
      let r2 = Attack.analyze_policy p in
      Alcotest.(check bool) (name ^ ": reports identical") true (r1 = r2))
    (zoo_at 4)

(* --- leakage ordering ---------------------------------------------------- *)

let leak name assoc = (report_of name assoc).Attack.leakage

let test_leakage_order () =
  List.iter
    (fun assoc ->
      let lru = leak "LRU" assoc and bip = leak "BIP" assoc in
      Alcotest.(check bool)
        (Printf.sprintf "BIP-%d evicts less information than LRU" assoc)
        true
        (bip.Attack.evicted_information < lru.Attack.evicted_information);
      Alcotest.(check bool)
        (Printf.sprintf "BIP-%d absorbs more noise than LRU" assoc)
        true
        (bip.Attack.absorbed_noise > lru.Attack.absorbed_noise);
      (* LRU distinguishes every victim intensity up to capacity. *)
      Alcotest.(check int)
        (Printf.sprintf "LRU-%d probe classes" assoc)
        (assoc + 1) lru.Attack.probe_classes)
    [ 4; 8 ]

(* --- DOT round trip ------------------------------------------------------ *)

let test_dot_round_trip () =
  List.iter
    (fun (name, p) ->
      let m = P.to_mealy p in
      let dot =
        Mealy.to_dot ~name
          ~input_label:(Types.input_label ~assoc:4)
          ~output_label:Types.output_label m
      in
      match Attack.machine_of_dot dot with
      | Error msg -> Alcotest.fail (name ^ ": of_dot failed: " ^ msg)
      | Ok m' ->
          Alcotest.(check bool)
            (name ^ ": DOT round trip is trace-equivalent")
            true (Mealy.equivalent m m'))
    (zoo_at 4)

let test_dot_errors () =
  let bad s =
    match Attack.machine_of_dot s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "empty text" true (bad "digraph g {}");
  Alcotest.(check bool) "missing transition" true
    (bad
       "digraph g { __start -> s0; s0 -> s0 [label=\"Ln(0)/_\"]; s0 -> s0 \
        [label=\"Ln(1)/_\"]; }")

(* --- QCheck: a synthesized eviction set actually evicts ------------------ *)

let prop_eviction_evicts =
  let n_zoo = List.length Zoo.entries in
  let arb =
    QCheck.make
      ~print:(fun (pi, assoc, t) ->
        Printf.sprintf "(policy %d, assoc %d, target %d)" pi assoc t)
      ~shrink:QCheck.Shrink.(triple int int int)
      QCheck.Gen.(triple (0 -- (n_zoo - 1)) (2 -- 8) (0 -- 7))
  in
  QCheck.Test.make ~name:"synthesized eviction sets evict (zoo, assoc 2-8)"
    ~count:60 arb (fun (pi, assoc, target) ->
      QCheck.assume (pi >= 0 && pi < n_zoo && assoc >= 2 && assoc <= 8);
      let e = List.nth Zoo.entries pi in
      QCheck.assume (e.Zoo.valid_assoc assoc);
      QCheck.assume (target >= 0 && target < assoc);
      let m = mealy_of e.Zoo.name assoc in
      match Attack.shortest_eviction m ~target with
      | None ->
          QCheck.Test.fail_reportf "%s-%d: line %d not evictable" e.Zoo.name
            assoc target
      | Some ev ->
          let conc =
            Attack.concretize ~probe:(`Evicted target) m
              ev.Attack.strategy.Attack.word
          in
          let o =
            Replay.machine ~initial:[||] ~fill_touch:true m conc.Attack.blocks
          in
          if not (Bytes.equal o.Replay.stream conc.Attack.predicted) then
            QCheck.Test.fail_reportf "%s-%d target %d: predicted %S, got %S"
              e.Zoo.name assoc target
              (Bytes.to_string conc.Attack.predicted)
              (Bytes.to_string o.Replay.stream)
          else true)

(* --- the daemon's analyze verb ------------------------------------------- *)

let test_service_analyze () =
  let module Server = Cq_service.Server in
  let module Client = Cq_service.Client in
  let module Json = Cq_service.Json in
  let dir = Printf.sprintf "wl-scratch-%d" (Unix.getpid ()) in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let socket = Filename.concat dir "a.sock" in
  let server = Server.create (Server.config ~workers:1 ~state_dir:dir socket) in
  Server.start server;
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  let c = Client.connect_unix socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let sid = Client.create_sim c ~policy:"LRU" ~assoc:4 () in
  let int_field doc name =
    match Json.mem_int name doc with
    | Some n -> n
    | None -> Alcotest.fail ("reply lacks " ^ name)
  in
  let local = Attack.analyze_policy (Zoo.make_exn ~name:"LRU" ~assoc:4) in
  let doc = Client.analyze c sid in
  Alcotest.(check string) "source before learn" "policy"
    (Option.value ~default:"?" (Json.mem_str "source" doc));
  Alcotest.(check int) "eviction set size" local.Attack.eviction_set_size
    (int_field doc "eviction_set_size");
  Alcotest.(check int) "verified" 1 (int_field doc "verified");
  Client.learn_start c sid;
  ignore (Client.learn_wait c ~timeout_s:300.0 sid);
  let doc2 = Client.analyze c sid in
  Alcotest.(check string) "source after learn" "learned"
    (Option.value ~default:"?" (Json.mem_str "source" doc2));
  Alcotest.(check int) "learned eviction set identical"
    local.Attack.eviction_set_size
    (int_field doc2 "eviction_set_size")

let suite =
  ( "attack",
    [
      Alcotest.test_case "zoo at assoc 4: synthesize + verify everywhere"
        `Quick test_zoo_4;
      Alcotest.test_case "zoo at assoc 8: synthesize + verify everywhere"
        `Slow test_zoo_8;
      Alcotest.test_case "stealth shapes (LRU cycle, FIFO one-shot)" `Quick
        test_stealthy_shapes;
      Alcotest.test_case "analysis is deterministic" `Quick test_determinism;
      Alcotest.test_case "leakage: BIP below LRU at assoc 4 and 8" `Slow
        test_leakage_order;
      Alcotest.test_case "DOT round trip over the zoo" `Quick
        test_dot_round_trip;
      Alcotest.test_case "DOT parse errors" `Quick test_dot_errors;
      QCheck_alcotest.to_alcotest prop_eviction_evicts;
      Alcotest.test_case "daemon analyze verb" `Quick test_service_analyze;
    ] )
