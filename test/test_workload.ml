(* Workload engine tests: differential replay (the three replayer paths
   and hwsim must produce byte-identical hit/miss streams), the
   Belady-OPT optimality property, generator determinism, and the miss
   attribution invariants.

   Everything is seeded: traces come from canonical spec strings and the
   QCheck properties use a fixed seed-independent generator, so CI is
   deterministic. *)

module W = Cq_workload
module Trace = Cq_workload.Trace
module Replay = Cq_workload.Replay
module Opt = Cq_workload.Opt
module P = Cq_policy.Policy
module Zoo = Cq_policy.Zoo
module Instance = Cq_policy.Instance
module Mealy = Cq_automata.Mealy
module Learn = Cq_core.Learn

let zoo_at assoc =
  List.filter_map
    (fun e ->
      if e.Zoo.valid_assoc assoc then Some (e.Zoo.name, e.Zoo.make assoc)
      else None)
    Zoo.entries

let traces_for assoc =
  (* Seeded, spec-defined traces spanning the generator grammar; universe
     both below and above the associativity so fills, hits and evictions
     all occur. *)
  List.map
    (Trace.of_spec_exn ~assoc)
    [
      Printf.sprintf "uniform:n=%d,len=2000,seed=11" (2 * assoc);
      Printf.sprintf "zipf:n=%d,len=2000,alpha=1.1,seed=12" (4 * assoc);
      "zipf:n=3,len=500,seed=13";
      "anti:len=600";
      Printf.sprintf "stride:n=%d,stride=3,len=800" (3 * assoc);
    ]

let stream_to_string s = String.init (Bytes.length s) (Bytes.get s)

let check_stream name expected actual =
  Alcotest.(check string) name
    (stream_to_string expected)
    (stream_to_string actual)

(* --- differential replay: policy vs Mealy.step vs compiled ------------- *)

let test_differential_truth_machines () =
  List.iter
    (fun assoc ->
      List.iter
        (fun (name, p) ->
          let m = P.to_mealy p in
          let c = Mealy.compile m in
          List.iter
            (fun (tr : Trace.t) ->
              let o_policy = Replay.policy p tr.Trace.blocks in
              let o_machine = Replay.machine m tr.Trace.blocks in
              let o_compiled = Replay.compiled c tr.Trace.blocks in
              let tag path =
                Printf.sprintf "%s/%d %s: %s" name assoc tr.Trace.label path
              in
              check_stream (tag "policy=machine") o_policy.Replay.stream
                o_machine.Replay.stream;
              check_stream (tag "machine=compiled") o_machine.Replay.stream
                o_compiled.Replay.stream)
            (traces_for assoc))
        (zoo_at assoc))
    [ 4; 8 ]

(* Cold-start replay (initial [||]) exercises the fill path under both
   fill_touch regimes. *)
let test_differential_cold_start () =
  List.iter
    (fun fill_touch ->
      List.iter
        (fun (name, p) ->
          let m = P.to_mealy p in
          let c = Mealy.compile m in
          List.iter
            (fun (tr : Trace.t) ->
              let o_policy =
                Replay.policy ~initial:[||] ~fill_touch p tr.Trace.blocks
              in
              let o_machine =
                Replay.machine ~initial:[||] ~fill_touch m tr.Trace.blocks
              in
              let o_compiled =
                Replay.compiled ~initial:[||] ~fill_touch c tr.Trace.blocks
              in
              let tag path =
                Printf.sprintf "%s cold ft=%b %s: %s" name fill_touch
                  tr.Trace.label path
              in
              check_stream (tag "policy=machine") o_policy.Replay.stream
                o_machine.Replay.stream;
              check_stream (tag "machine=compiled") o_machine.Replay.stream
                o_compiled.Replay.stream)
            (traces_for 4))
        (zoo_at 4))
    [ true; false ]

(* Replay through machines actually produced by the learner, not just
   Policy.to_mealy ground truth. *)
let test_differential_learned_machines () =
  List.iter
    (fun name ->
      let p = Zoo.make_exn ~name ~assoc:4 in
      let report = Learn.learn_simulated ~identify:false p in
      let c = Mealy.compile report.Learn.machine in
      List.iter
        (fun (tr : Trace.t) ->
          let o_policy = Replay.policy p tr.Trace.blocks in
          let o_learned = Replay.compiled c tr.Trace.blocks in
          check_stream
            (Printf.sprintf "learned %s on %s" name tr.Trace.label)
            o_policy.Replay.stream o_learned.Replay.stream)
        (traces_for 4))
    [ "LRU"; "FIFO"; "PLRU" ]

(* hwsim as the load source: a cold toy-model L1 set must classify
   hits/misses exactly like the local replayers do for the same policy
   (PLRU, assoc 2, fill_touches_policy).  The universe stays small enough
   that no other level of the inclusive hierarchy ever evicts our lines,
   so back-invalidation cannot perturb the L1 set. *)
let test_differential_hwsim () =
  let module HM = Cq_hwsim.Machine in
  let module Cpu = Cq_hwsim.Cpu_model in
  let p = Zoo.make_exn ~name:"PLRU" ~assoc:2 in
  let c = Mealy.compile (P.to_mealy p) in
  List.iter
    (fun spec ->
      let tr = Trace.of_spec_exn spec in
      let hw = HM.create ~noise:HM.quiet_noise Cpu.toy in
      HM.set_prefetchers hw false;
      let hw_stream =
        HM.replay_set ~universe:4 hw Cpu.L1 ~slice:0 ~set:0 tr.Trace.blocks
      in
      let o_inst =
        Instance.replay (Instance.create p) ~initial:[||] ~fill_touch:true
          tr.Trace.blocks
      in
      let o_compiled =
        Replay.compiled ~initial:[||] ~fill_touch:true c tr.Trace.blocks
      in
      check_stream ("hwsim=instance " ^ spec) hw_stream o_inst;
      check_stream ("hwsim=compiled " ^ spec) hw_stream
        o_compiled.Replay.stream)
    [
      "uniform:n=4,len=1500,seed=21";
      "zipf:n=4,len=1500,alpha=0.9,seed=22";
      "anti:ws=3,len=900";
    ]

(* --- Belady-OPT --------------------------------------------------------- *)

(* QCheck: OPT's hit count bounds every zoo policy on arbitrary traces
   (shrinking gives a minimal counterexample on failure). *)
let prop_opt_dominates =
  let arb_blocks =
    QCheck.make
      ~print:(fun l -> String.concat "," (List.map string_of_int l))
      ~shrink:QCheck.Shrink.list
      QCheck.Gen.(list_size (0 -- 120) (0 -- 9))
  in
  QCheck.Test.make ~name:"Belady-OPT dominates every zoo policy" ~count:150
    arb_blocks (fun l ->
      let blocks = Array.of_list l in
      let assoc = 4 in
      let opt = Opt.replay ~assoc blocks in
      List.for_all
        (fun (name, p) ->
          let o = Replay.policy p blocks in
          if opt.Replay.hits >= o.Replay.hits then true
          else
            QCheck.Test.fail_reportf "%s beats OPT: %d > %d hits" name
              o.Replay.hits opt.Replay.hits)
        (zoo_at assoc))

let test_opt_deterministic () =
  let spec = "zipf:n=32,len=4000,seed=77" in
  let t1 = Trace.of_spec_exn spec and t2 = Trace.of_spec_exn spec in
  Alcotest.(check bool) "same spec, same blocks" true (t1.Trace.blocks = t2.Trace.blocks);
  let o1 = Opt.replay ~assoc:4 t1.Trace.blocks in
  let o2 = Opt.replay ~assoc:4 t2.Trace.blocks in
  check_stream "OPT stream deterministic" o1.Replay.stream o2.Replay.stream

let test_opt_beats_lru_on_anti_trace () =
  (* The adversarial loop: working set assoc+1 starves LRU completely,
     while clairvoyance keeps most accesses hits. *)
  let assoc = 4 in
  let tr = Trace.of_spec_exn ~assoc "anti:len=1000" in
  let lru = Replay.policy (Zoo.make_exn ~name:"LRU" ~assoc) tr.Trace.blocks in
  let opt = Opt.replay ~assoc tr.Trace.blocks in
  (* Blocks 0..assoc-1 are resident initially, so LRU gets exactly one
     warm lap of hits; after block [assoc] arrives it never hits again. *)
  Alcotest.(check int) "LRU starves on the anti-LRU loop" assoc
    lru.Replay.hits;
  Alcotest.(check bool) "OPT hits most of the loop" true
    (Replay.hit_rate opt > 0.5)

(* --- generators and spec grammar ---------------------------------------- *)

let test_spec_round_trip () =
  List.iter
    (fun spec ->
      let t = Trace.of_spec_exn ~assoc:8 spec in
      let t' = Trace.of_spec_exn ~assoc:8 t.Trace.spec in
      Alcotest.(check string) ("canonical spec of " ^ spec) t.Trace.spec t'.Trace.spec;
      Alcotest.(check bool) ("blocks of " ^ spec) true (t.Trace.blocks = t'.Trace.blocks);
      Alcotest.(check bool)
        ("universe bounds ids of " ^ spec)
        true
        (Array.for_all (fun b -> b >= 0 && b < t.Trace.universe) t.Trace.blocks))
    [
      "zipf";
      "zipf:n=16,alpha=0.8,len=512,seed=5";
      "uniform:n=10,len=256,seed=9";
      "seq:n=6,len=100";
      "stride:n=32,stride=5,len=333";
      "anti";
      "anti:ws=3,len=64";
    ]

let test_spec_errors () =
  let is_error s =
    match Trace.of_spec s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "unknown kind" true (is_error "markov:n=4");
  Alcotest.(check bool) "bad integer" true (is_error "zipf:n=abc");
  Alcotest.(check bool) "unknown key" true (is_error "seq:n=4,alpha=2");
  Alcotest.(check bool) "missing value" true (is_error "uniform:n")

let test_anti_defaults_to_assoc_plus_one () =
  let t = Trace.of_spec_exn ~assoc:4 "anti:len=10" in
  Alcotest.(check int) "ws = assoc + 1" 5 t.Trace.universe

(* --- miss attribution --------------------------------------------------- *)

let test_attribution_invariants () =
  let p = Zoo.make_exn ~name:"PLRU" ~assoc:4 in
  let c = Mealy.compile (P.to_mealy p) in
  let tr = Trace.of_spec_exn ~assoc:4 "zipf:n=12,len=3000,seed=31" in
  let attr = Replay.attribution c in
  let o = Replay.compiled ~attr c tr.Trace.blocks in
  let sum = Array.fold_left ( + ) 0 in
  Alcotest.(check int) "state misses sum to misses" o.Replay.misses
    (sum attr.Replay.state_misses);
  Alcotest.(check int) "state hits sum to hits" o.Replay.hits
    (sum attr.Replay.state_hits);
  (* Default initial content is a full set, so every miss evicts. *)
  Alcotest.(check int) "victims sum to misses" o.Replay.misses
    (sum attr.Replay.victims);
  let top = Replay.top_miss_states attr 3 in
  Alcotest.(check bool) "top rows sorted by misses" true
    (match top with
    | (_, m1, _) :: (_, m2, _) :: _ -> m1 >= m2
    | _ -> true)

let test_attribution_aggregates_across_traces () =
  let p = Zoo.make_exn ~name:"LRU" ~assoc:4 in
  let c = Mealy.compile (P.to_mealy p) in
  let t1 = Trace.of_spec_exn ~assoc:4 "uniform:n=8,len=500,seed=41" in
  let t2 = Trace.of_spec_exn ~assoc:4 "uniform:n=8,len=700,seed=42" in
  let attr = Replay.attribution c in
  let o1 = Replay.compiled ~attr c t1.Trace.blocks in
  let o2 = Replay.compiled ~attr c t2.Trace.blocks in
  let sum = Array.fold_left ( + ) 0 in
  Alcotest.(check int) "aggregated misses"
    (o1.Replay.misses + o2.Replay.misses)
    (sum attr.Replay.state_misses)

(* --- eval harness ------------------------------------------------------- *)

let test_eval_rows () =
  let traces = [ Trace.of_spec_exn ~assoc:4 "zipf:n=16,len=1000,seed=51" ] in
  let subjects =
    [ ("LRU", Zoo.make_exn ~name:"LRU" ~assoc:4);
      ("FIFO", Zoo.make_exn ~name:"FIFO" ~assoc:4) ]
  in
  let rows = W.Eval.policies subjects traces in
  Alcotest.(check int) "one row per subject x trace" 2 (List.length rows);
  List.iter
    (fun (r : W.Eval.row) ->
      Alcotest.(check bool)
        (r.W.Eval.subject ^ " bounded by OPT")
        true
        (r.W.Eval.opt_hits >= r.W.Eval.hits && r.W.Eval.accesses = 1000))
    rows

(* --- the daemon's replay verb ------------------------------------------- *)

(* The daemon must agree, number for number, with a local replay of the
   same spec: before a learn it replays the policy, after a learn it
   replays the learned machine — and the hit counts must not move. *)
let test_service_replay () =
  let module Server = Cq_service.Server in
  let module Client = Cq_service.Client in
  let module Json = Cq_service.Json in
  let dir = Printf.sprintf "wl-scratch-%d" (Unix.getpid ()) in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let socket = Filename.concat dir "d.sock" in
  let server = Server.create (Server.config ~workers:1 ~state_dir:dir socket) in
  Server.start server;
  Fun.protect ~finally:(fun () -> Server.stop server) @@ fun () ->
  let c = Client.connect_unix socket in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let sid = Client.create_sim c ~policy:"LRU" ~assoc:4 () in
  let spec = "zipf:n=16,len=1500,seed=61" in
  let tr = Trace.of_spec_exn ~assoc:4 spec in
  let local =
    Replay.policy (Zoo.make_exn ~name:"LRU" ~assoc:4) tr.Trace.blocks
  in
  let opt = Opt.replay ~assoc:4 tr.Trace.blocks in
  let int_field doc name =
    match Json.mem_int name doc with
    | Some n -> n
    | None -> Alcotest.fail ("reply lacks " ^ name)
  in
  let str_field doc name =
    Option.value ~default:"?" (Json.mem_str name doc)
  in
  let doc = Client.replay c ~spec sid in
  Alcotest.(check string) "source before learn" "policy" (str_field doc "source");
  Alcotest.(check int) "accesses" 1500 (int_field doc "accesses");
  Alcotest.(check int) "hits" local.Replay.hits (int_field doc "hits");
  Alcotest.(check int) "opt_hits" opt.Replay.hits (int_field doc "opt_hits");
  Client.learn_start c sid;
  ignore (Client.learn_wait c ~timeout_s:300.0 sid);
  let doc2 = Client.replay c ~spec sid in
  Alcotest.(check string) "source after learn" "learned" (str_field doc2 "source");
  Alcotest.(check int) "learned hits identical" local.Replay.hits
    (int_field doc2 "hits");
  match Client.replay c ~spec:"bogus:n=1" sid with
  | exception Client.Error { kind = "bad_request"; _ } -> ()
  | exception e -> raise e
  | _ -> Alcotest.fail "bad spec accepted"

let suite =
  ( "workload",
    [
      Alcotest.test_case "differential: truth machines (assoc 4, 8)" `Quick
        test_differential_truth_machines;
      Alcotest.test_case "differential: cold start, both fill regimes" `Quick
        test_differential_cold_start;
      Alcotest.test_case "differential: learned machines" `Slow
        test_differential_learned_machines;
      Alcotest.test_case "differential: hwsim toy L1" `Quick
        test_differential_hwsim;
      QCheck_alcotest.to_alcotest prop_opt_dominates;
      Alcotest.test_case "OPT deterministic from spec" `Quick
        test_opt_deterministic;
      Alcotest.test_case "OPT beats LRU on anti-LRU loop" `Quick
        test_opt_beats_lru_on_anti_trace;
      Alcotest.test_case "spec round-trip" `Quick test_spec_round_trip;
      Alcotest.test_case "spec errors" `Quick test_spec_errors;
      Alcotest.test_case "anti ws defaults to assoc+1" `Quick
        test_anti_defaults_to_assoc_plus_one;
      Alcotest.test_case "attribution invariants" `Quick
        test_attribution_invariants;
      Alcotest.test_case "attribution aggregates" `Quick
        test_attribution_aggregates_across_traces;
      Alcotest.test_case "eval rows" `Quick test_eval_rows;
      Alcotest.test_case "daemon replay verb" `Quick test_service_replay;
    ] )
