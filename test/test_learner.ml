(* Tests for cq_learner: membership oracles (counting/caching), L* with
   Rivest–Schapire, the W-method and its characterization sets, and the
   random-walk equivalence oracle. *)

module Mealy = Cq_automata.Mealy
module Mo = Cq_learner.Moracle
module Eq = Cq_learner.Equivalence
module L = Cq_learner.Lstar

let gen_mealy =
  QCheck.Gen.(
    let* n = 1 -- 10 in
    let* k = 1 -- 4 in
    let* outs = list_size (return (n * k)) (0 -- 2) in
    let* nexts = list_size (return (n * k)) (0 -- (n - 1)) in
    let next =
      Array.init n (fun s -> Array.init k (fun i -> List.nth nexts ((s * k) + i)))
    in
    let out =
      Array.init n (fun s -> Array.init k (fun i -> List.nth outs ((s * k) + i)))
    in
    return (Mealy.make ~init:0 ~n_inputs:k ~next ~out))

let arb_mealy = QCheck.make gen_mealy

let test_cached_oracle_counts () =
  let stats = Mo.fresh_stats () in
  let truth = Mealy.make ~init:0 ~n_inputs:2 ~next:[| [| 0; 0 |] |] ~out:[| [| 1; 2 |] |] in
  let o = Mo.of_mealy truth |> Mo.counting stats |> Mo.cached ~stats in
  ignore (o.Mo.query [ 0; 1; 0 ]);
  ignore (o.Mo.query [ 0; 1; 0 ]);
  ignore (o.Mo.query [ 0; 1 ]);
  (* prefix: served by the trie *)
  Alcotest.(check int) "one real query" 1 (Cq_util.Metrics.value stats.Mo.queries);
  Alcotest.(check int) "two cache hits" 2 (Cq_util.Metrics.value stats.Mo.cache_hits)

let test_cached_detects_nondeterminism () =
  let flip = ref 0 in
  let o =
    Mo.cached
      (Mo.make ~n_inputs:1 (fun w -> incr flip; List.map (fun _ -> !flip) w))
  in
  ignore (o.Mo.query [ 0 ]);
  (* The second query returns different outputs for the same word. *)
  match o.Mo.query [ 0; 0 ] with
  | _ -> Alcotest.fail "nondeterminism not detected"
  | exception Mo.Inconsistent _ -> ()

let test_characterization_set_separates () =
  let m = Mealy.minimize (Cq_policy.Policy.to_mealy (Cq_policy.Lru.make 3)) in
  let w = Eq.characterization_set m in
  let n = Mealy.n_states m in
  let sigs =
    List.init n (fun s -> List.map (fun word -> Mealy.run_from m s word) w)
  in
  Alcotest.(check int) "all states separated" n
    (List.length (List.sort_uniq compare sigs))

let test_words_up_to () =
  let count n k = Seq.length (Eq.words_up_to n k) in
  Alcotest.(check int) "|I^{<=0}|" 1 (count 3 0);
  Alcotest.(check int) "|I^{<=1}|" 4 (count 3 1);
  Alcotest.(check int) "|I^{<=2}|" 13 (count 3 2);
  (* Shortest first, and re-traversable (same result twice). *)
  let words = List.of_seq (Eq.words_up_to 2 2) in
  Alcotest.(check bool) "shortest first" true
    (List.map List.length words = List.sort compare (List.map List.length words));
  Alcotest.(check bool) "re-traversable" true
    (List.of_seq (Eq.words_up_to 2 2) = words)

let learn_with_wmethod truth =
  let oracle = Mo.cached (Mo.of_mealy truth) in
  (L.learn ~oracle ~find_cex:(Eq.w_method ~depth:1 oracle) ()).L.machine

let test_lstar_learns_lru4 () =
  let truth = Cq_policy.Policy.to_mealy (Cq_policy.Lru.make 4) in
  let learned = learn_with_wmethod truth in
  Alcotest.(check int) "24 states" 24 (Mealy.n_states learned);
  Alcotest.(check bool) "equivalent" true (Mealy.equivalent truth learned)

let test_lstar_learns_plru8 () =
  let truth = Cq_policy.Policy.to_mealy (Cq_policy.Plru.make 8) in
  let learned = learn_with_wmethod truth in
  Alcotest.(check int) "128 states" 128 (Mealy.n_states learned)

let test_lstar_state_budget () =
  let truth = Cq_policy.Policy.to_mealy (Cq_policy.Lru.make 4) in
  let oracle = Mo.cached (Mo.of_mealy truth) in
  match L.learn ~max_states:5 ~oracle ~find_cex:(Eq.w_method ~depth:1 oracle) () with
  | _ -> Alcotest.fail "budget not enforced"
  | exception L.Diverged _ -> ()

let test_random_walk_finds_difference () =
  let truth = Cq_policy.Policy.to_mealy (Cq_policy.Lru.make 3) in
  (* A wrong hypothesis: FIFO of the same associativity. *)
  let wrong = Cq_policy.Policy.to_mealy (Cq_policy.Fifo.make 3) in
  let oracle = Mo.of_mealy truth in
  let find = Eq.random_walk ~prng:(Cq_util.Prng.of_int 3) ~max_tests:5000 oracle in
  match find wrong with
  | Some w -> Alcotest.(check bool) "real cex" true (Mealy.run truth w <> Mealy.run wrong w)
  | None -> Alcotest.fail "no counterexample found"

let test_wp_method_learns () =
  List.iter
    (fun (name, assoc) ->
      let truth = Cq_policy.Policy.to_mealy (Cq_policy.Zoo.make_exn ~name ~assoc) in
      let oracle = Mo.cached (Mo.of_mealy truth) in
      let learned =
        (L.learn ~oracle ~find_cex:(Eq.wp_method ~depth:1 oracle) ()).L.machine
      in
      Alcotest.(check bool) (name ^ " learned with Wp") true
        (Mealy.equivalent truth learned))
    [ ("LRU", 4); ("MRU", 4); ("SRRIP-HP", 2); ("New1", 3); ("PLRU", 4) ]

let test_wp_suite_smaller_than_w () =
  (* Same completeness, fewer symbols: the reason the paper uses Wp. *)
  List.iter
    (fun (name, assoc) ->
      let h =
        Mealy.minimize (Cq_policy.Policy.to_mealy (Cq_policy.Zoo.make_exn ~name ~assoc))
      in
      let w = Eq.suite_symbols (Eq.w_method_suite ~depth:1 h) in
      let wp = Eq.suite_symbols (Eq.wp_method_suite ~depth:1 h) in
      Alcotest.(check bool)
        (Printf.sprintf "%s-%d: |Wp| (%d) <= |W| (%d)" name assoc wp w)
        true (wp <= w))
    [ ("LRU", 4); ("MRU", 4); ("SRRIP-HP", 2); ("New1", 3) ]

let test_wp_identification_sets () =
  let m = Mealy.minimize (Cq_policy.Policy.to_mealy (Cq_policy.Mru.make 3)) in
  let w = Eq.characterization_set m in
  let wp = Eq.identification_sets m w in
  let n = Mealy.n_states m in
  (* Every state's identification set separates it from every other. *)
  for s = 0 to n - 1 do
    for t = 0 to n - 1 do
      if s <> t then
        Alcotest.(check bool)
          (Printf.sprintf "W_%d separates %d from %d" s s t)
          true
          (List.exists
             (fun word -> Mealy.run_from m s word <> Mealy.run_from m t word)
             wp.(s))
    done
  done

let test_perfect_oracle () =
  let a = Cq_policy.Policy.to_mealy (Cq_policy.Lru.make 2) in
  Alcotest.(check bool) "equal machines pass" true (Eq.perfect a a = None);
  let b = Cq_policy.Policy.to_mealy (Cq_policy.Fifo.make 2) in
  Alcotest.(check bool) "different machines fail" true (Eq.perfect a b <> None)

(* --- qcheck --------------------------------------------------------------- *)

let prop_lstar_perfect_eq_exact =
  QCheck.Test.make ~name:"L* with a perfect teacher learns exactly" ~count:100
    arb_mealy (fun truth ->
      let oracle = Mo.cached (Mo.of_mealy truth) in
      let r = L.learn ~oracle ~find_cex:(Eq.perfect truth) () in
      Mealy.equivalent truth r.L.machine
      && Mealy.n_states r.L.machine = Mealy.n_states (Mealy.minimize truth))

let prop_lstar_wmethod_corollary_3_4 =
  (* Corollary 3.4: with a depth-k conformance suite, the result is either
     exactly right or the truth has more than |learned| + k states.  (For
     random machines, depth 1 occasionally terminates early — that is the
     caveat the paper's guarantee spells out.) *)
  QCheck.Test.make ~name:"L* with W-method depth 1 satisfies Corollary 3.4"
    ~count:60 arb_mealy (fun truth ->
      let learned = learn_with_wmethod truth in
      Mealy.equivalent truth learned
      || Mealy.n_states (Mealy.minimize truth) > Mealy.n_states learned + 1)

let prop_wp_equals_w_verdict =
  (* On the machines the learner produces (minimal hypotheses), Wp must
     accept exactly when W accepts. *)
  QCheck.Test.make ~name:"Wp and W agree on the truth" ~count:100 arb_mealy
    (fun truth ->
      let minimized = Mealy.minimize truth in
      let oracle = Mo.of_mealy truth in
      (Eq.wp_method ~depth:1 oracle minimized = None)
      = (Eq.w_method ~depth:1 oracle minimized = None))

let prop_wmethod_passes_on_truth =
  QCheck.Test.make ~name:"W-method finds no counterexample for the truth"
    ~count:100 arb_mealy (fun truth ->
      let minimized = Mealy.minimize truth in
      let oracle = Mo.of_mealy truth in
      Eq.w_method ~depth:1 oracle minimized = None)

(* --- Quotient: the relabeling action ---------------------------------- *)

module Q = Cq_learner.Quotient

(* A random line permutation together with a random signature (a list of
   outputs as the eviction sweep produces them: [Some line] / [None]). *)
let gen_perm_and_signature =
  QCheck.Gen.(
    let* assoc = 2 -- 6 in
    let* keys = list_size (return assoc) (0 -- 1_000_000) in
    let perm =
      List.mapi (fun i k -> (k, i)) keys
      |> List.sort compare
      |> List.map snd
      |> Array.of_list
    in
    let* sig_len = 1 -- 12 in
    let* raw = list_size (return sig_len) (0 -- assoc) in
    let signature =
      List.map (fun v -> if v = assoc then None else Some v) raw
    in
    return (assoc, perm, signature))

let arb_perm_and_signature =
  QCheck.make
    ~print:(fun (assoc, perm, s) ->
      Fmt.str "assoc=%d perm=[%a] sig=[%a]" assoc
        Fmt.(list ~sep:(any ";") int)
        (Array.to_list perm)
        Fmt.(list ~sep:(any ";") (option int))
        s)
    gen_perm_and_signature

let prop_canonical_signature_invariant =
  (* The canonical form is constant on relabeling orbits: permuting the
     lines of a signature never changes it. *)
  QCheck.Test.make ~name:"canonical signature is permutation-invariant"
    ~count:500 arb_perm_and_signature (fun (assoc, perm, s) ->
      let a = Q.policy_action ~assoc in
      let permuted = List.map (a.Q.map_output perm) s in
      Q.canonical_signature a permuted = Q.canonical_signature a s)

let prop_derive_recovers_witness =
  (* [derive] proposes a witness permutation whenever the two signatures
     really are relabelings of each other, and the witness it proposes
     maps one onto the other exactly (it need not equal the permutation
     used — lines the signature never names are unconstrained). *)
  QCheck.Test.make ~name:"derive recovers a relabeling witness" ~count:500
    arb_perm_and_signature (fun (assoc, perm, s) ->
      let a = Q.policy_action ~assoc in
      let permuted = List.map (a.Q.map_output perm) s in
      match a.Q.derive s permuted with
      | None -> false
      | Some q -> List.map (a.Q.map_output q) s = permuted)

(* PR-7 regression, membership-oracle flavour: cached's pending-word
   table binds each word once; duplicates in one batch reach the system
   deduplicated and a repeat batch is served from the trie. *)
let test_cached_batch_dedup () =
  let stats = Mo.fresh_stats () in
  let truth =
    Mealy.make ~init:0 ~n_inputs:2 ~next:[| [| 0; 0 |] |] ~out:[| [| 1; 2 |] |]
  in
  let o = Mo.of_mealy truth |> Mo.counting stats |> Mo.cached ~stats in
  let w1 = [ 0; 1; 0 ] and w2 = [ 1; 1 ] in
  (match o.Mo.query_batch [ w1; w2; w1; w1; w2 ] with
  | [ a; b; a'; a''; b' ] ->
      Alcotest.(check bool) "duplicates answered identically" true
        (a = a' && a = a'' && b = b')
  | _ -> Alcotest.fail "expected five answers");
  Alcotest.(check int) "system saw each distinct word once" 2
    (Cq_util.Metrics.value stats.Mo.queries);
  ignore (o.Mo.query_batch [ w1; w2 ]);
  Alcotest.(check int) "repeat batch served from the trie" 2
    (Cq_util.Metrics.value stats.Mo.queries)

let suite =
  ( "learner",
    [
      Alcotest.test_case "cached oracle counts" `Quick test_cached_oracle_counts;
      Alcotest.test_case "cached batch dedup" `Quick test_cached_batch_dedup;
      Alcotest.test_case "cache detects nondeterminism" `Quick test_cached_detects_nondeterminism;
      Alcotest.test_case "characterization set" `Quick test_characterization_set_separates;
      Alcotest.test_case "words_up_to" `Quick test_words_up_to;
      Alcotest.test_case "L* learns LRU-4" `Quick test_lstar_learns_lru4;
      Alcotest.test_case "L* learns PLRU-8" `Quick test_lstar_learns_plru8;
      Alcotest.test_case "state budget" `Quick test_lstar_state_budget;
      Alcotest.test_case "random walk" `Quick test_random_walk_finds_difference;
      Alcotest.test_case "perfect oracle" `Quick test_perfect_oracle;
      Alcotest.test_case "Wp-method learns" `Quick test_wp_method_learns;
      Alcotest.test_case "Wp suite smaller than W" `Quick test_wp_suite_smaller_than_w;
      Alcotest.test_case "Wp identification sets" `Quick test_wp_identification_sets;
      QCheck_alcotest.to_alcotest prop_lstar_perfect_eq_exact;
      QCheck_alcotest.to_alcotest prop_lstar_wmethod_corollary_3_4;
      QCheck_alcotest.to_alcotest prop_wmethod_passes_on_truth;
      QCheck_alcotest.to_alcotest prop_wp_equals_w_verdict;
      QCheck_alcotest.to_alcotest prop_canonical_signature_invariant;
      QCheck_alcotest.to_alcotest prop_derive_recovers_witness;
    ] )
