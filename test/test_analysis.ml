(* Tests for cq_analysis: the MBL abstract interpreter held to its
   exactness contract against the real expander (differential fuzzing),
   the automaton model checker against the policy zoo and seeded
   mutations of it, and the self-lint pass. *)

module A = Cq_mbl.Ast
module E = Cq_mbl.Expand
module MC = Cq_analysis.Mbl_check
module AC = Cq_analysis.Automaton_check
module Mealy = Cq_automata.Mealy

(* --- Mbl_check: unit cases ------------------------------------------- *)

let summary_of input =
  match MC.check_string ~assoc:4 input with
  | Ok s -> s
  | Error d -> Alcotest.fail ("unexpected rejection: " ^ MC.diagnostic_to_string d)

let diagnostic_of ?max_queries input =
  match MC.check_string ?max_queries ~assoc:4 input with
  | Error d -> d
  | Ok _ -> Alcotest.fail ("unexpected acceptance of " ^ input)

let test_check_example_4_1 () =
  let s = summary_of "@ X _?" in
  Alcotest.(check int) "cardinality" 4 s.MC.cardinality;
  Alcotest.(check int) "accesses" 24 s.MC.total_accesses;
  Alcotest.(check int) "profiled" 4 s.MC.profiled_accesses;
  Alcotest.(check int) "longest" 6 s.MC.max_query_len;
  Alcotest.(check int) "main blocks" 5 s.MC.main_blocks;
  Alcotest.(check int) "aux blocks" 0 s.MC.aux_blocks

let test_check_aux_blocks () =
  let s = summary_of "@ M a M?" in
  Alcotest.(check int) "main" 5 s.MC.main_blocks;
  Alcotest.(check int) "aux" 1 s.MC.aux_blocks;
  Alcotest.(check (float 0.001)) "pressure" 1.25 s.MC.associativity_pressure

let test_check_rejections () =
  (match diagnostic_of "(A?)?" with
  | { MC.code = MC.Double_tag; _ } -> ()
  | d -> Alcotest.fail ("expected Double_tag, got " ^ MC.diagnostic_to_string d));
  (match diagnostic_of ~max_queries:8 "_ _ _" with
  | { MC.code = MC.Cardinality_overflow { bound = 8; at_least }; _ } ->
      Alcotest.(check bool) "overflow bound" true (at_least > 8)
  | d ->
      Alcotest.fail
        ("expected Cardinality_overflow, got " ^ MC.diagnostic_to_string d));
  match MC.check ~assoc:4 (A.Power (A.Block "A", -1)) with
  | Error { MC.code = MC.Negative_power (-1); _ } -> ()
  | Error d ->
      Alcotest.fail ("expected Negative_power, got " ^ MC.diagnostic_to_string d)
  | Ok _ -> Alcotest.fail "negative power accepted"

let test_check_capacity () =
  (match MC.check_string ~capacity:4 ~assoc:4 "@ M a M?" with
  | Error { MC.code = MC.Excess_blocks { distinct = 5; capacity = 4 }; _ } -> ()
  | Error d -> Alcotest.fail ("wrong diagnostic: " ^ MC.diagnostic_to_string d)
  | Ok _ -> Alcotest.fail "capacity overrun accepted");
  match MC.check_string ~capacity:5 ~assoc:4 "@ M a M?" with
  | Ok _ -> ()
  | Error d -> Alcotest.fail ("5 blocks in 5: " ^ MC.diagnostic_to_string d)

(* Guard-placement subtlety inherited from the expander: Power k = 0
   never evaluates its body, so an overflowing body is invisible; a
   zero-cardinality Seq item keeps later items evaluated (and guarded). *)
let test_check_guard_placement () =
  let overflow = A.Seq [ A.Wildcard; A.Wildcard; A.Wildcard ] (* 64 > 8 *) in
  (match MC.check ~max_queries:8 ~assoc:4 (A.Power (overflow, 0)) with
  | Ok s -> Alcotest.(check int) "k=0 skips the body" 1 s.MC.cardinality
  | Error d -> Alcotest.fail (MC.diagnostic_to_string d));
  match MC.check ~max_queries:8 ~assoc:4 (A.Seq [ A.Set []; overflow ]) with
  | Error { MC.code = MC.Cardinality_overflow _; _ } -> ()
  | Error d -> Alcotest.fail ("wrong diagnostic: " ^ MC.diagnostic_to_string d)
  | Ok _ -> Alcotest.fail "overflow after empty set not caught"

(* --- Mbl_check: differential fuzz against the expander ---------------- *)

(* Random ASTs with every constructor, including ill-tagged and
   overflowing ones; a small [max_queries] makes overflows common. *)
let gen_ast prng =
  let block () =
    if Cq_util.Prng.bool prng 0.1 then A.Block "a" (* auxiliary *)
    else
      A.Block
        (Cq_cache.Block.to_string
           (Cq_cache.Block.of_index (Cq_util.Prng.int prng 8)))
  in
  let rec go depth =
    if depth = 0 then
      match Cq_util.Prng.int prng 4 with
      | 0 -> A.At
      | 1 -> A.Wildcard
      | _ -> block ()
    else
      match Cq_util.Prng.int prng 10 with
      | 0 | 1 -> block ()
      | 2 -> A.At
      | 3 -> A.Wildcard
      | 4 | 5 ->
          A.Seq (List.init (1 + Cq_util.Prng.int prng 3) (fun _ -> go (depth - 1)))
      | 6 ->
          A.Set (List.init (1 + Cq_util.Prng.int prng 3) (fun _ -> go (depth - 1)))
      | 7 -> A.Power (go (depth - 1), Cq_util.Prng.int prng 5 - 1)
      | 8 -> A.Extend (go (depth - 1), go (depth - 1))
      | _ ->
          A.Tagged
            (go (depth - 1), if Cq_util.Prng.bool prng 0.7 then A.Profile else A.Flush)
  in
  go (1 + Cq_util.Prng.int prng 4)

let query_strings qs = List.map E.query_to_string qs

let distinct_blocks qs =
  List.concat_map E.blocks qs
  |> List.map Cq_cache.Block.to_string
  |> List.sort_uniq compare

(* The exactness contract, program by program: same verdict as the
   expander, and on acceptance every summary field agrees with the
   materialised expansion. *)
let check_one ~max_queries ~assoc ast =
  let pp () = A.to_string ast in
  let expansion =
    match E.expand ~max_queries ~assoc ast with
    | qs -> Ok qs
    | exception E.Expansion_error msg -> Error msg
  in
  match (MC.check ~max_queries ~assoc ast, expansion) with
  | Ok s, Ok qs ->
      let lens = List.map List.length qs in
      Alcotest.(check int)
        (pp () ^ ": cardinality")
        (List.length qs) s.MC.cardinality;
      Alcotest.(check int)
        (pp () ^ ": accesses")
        (List.fold_left ( + ) 0 lens)
        s.MC.total_accesses;
      Alcotest.(check int)
        (pp () ^ ": profiled")
        (List.fold_left (fun a q -> a + List.length (E.profiled_indices q)) 0 qs)
        s.MC.profiled_accesses;
      Alcotest.(check int)
        (pp () ^ ": longest")
        (List.fold_left max 0 lens)
        s.MC.max_query_len;
      Alcotest.(check (list string))
        (pp () ^ ": footprint")
        (distinct_blocks qs)
        (List.map Cq_cache.Block.to_string s.MC.footprint)
  | Error d, Ok _ ->
      Alcotest.fail
        (Printf.sprintf "%s: checker rejected (%s) but expansion succeeded"
           (pp ()) (MC.diagnostic_to_string d))
  | Ok _, Error msg ->
      Alcotest.fail
        (Printf.sprintf "%s: checker accepted but expansion failed (%s)"
           (pp ()) msg)
  | Error _, Error _ -> ()

(* simplify must preserve the exact query list on acceptance and the
   rejection on rejection. *)
let check_simplify ~max_queries ~assoc ast =
  let ast' = MC.simplify ~max_queries ~assoc ast in
  match E.expand ~max_queries ~assoc ast with
  | qs ->
      Alcotest.(check (list string))
        (A.to_string ast ^ " simplifies to " ^ A.to_string ast')
        (query_strings qs)
        (query_strings (E.expand ~max_queries ~assoc ast'))
  | exception E.Expansion_error _ -> (
      match E.expand ~max_queries ~assoc ast' with
      | _ -> Alcotest.fail (A.to_string ast ^ ": simplify lost the rejection")
      | exception E.Expansion_error _ -> ())

let test_differential_fuzz () =
  let prng = Cq_util.Prng.of_int 0x5eed5 in
  for _ = 1 to 1_000 do
    let ast = gen_ast prng in
    let max_queries = if Cq_util.Prng.bool prng 0.5 then 64 else 65536 in
    let assoc = 2 + Cq_util.Prng.int prng 3 in
    check_one ~max_queries ~assoc ast;
    check_simplify ~max_queries ~assoc ast
  done

let test_simplify_shapes () =
  let simp s =
    A.to_string (MC.simplify ~assoc:4 (Cq_mbl.Parser.parse s))
  in
  (* Representative rewrites (the differential fuzz proves they are
     semantics-preserving; this pins down that they actually fire). *)
  Alcotest.(check string) "trivial power" "A B" (simp "(A B)1");
  Alcotest.(check string) "nested powers" "A6" (simp "((A)3)2");
  Alcotest.(check string) "singleton seq" "A" (simp "(A)")

(* --- Automaton_check: the zoo passes ---------------------------------- *)

(* Every policy in the zoo satisfies all five axioms at every (small)
   associativity.  Larger policies explode in control states (LRU-8 has
   8!), so the bigger associativity is exercised on the small ones. *)
let zoo_machines () =
  List.concat_map
    (fun (e : Cq_policy.Zoo.entry) ->
      let assocs =
        if List.mem e.Cq_policy.Zoo.name [ "FIFO"; "PLRU"; "MRU" ] then
          [ 2; 4; 8 ]
        else [ 2; 4 ]
      in
      List.filter_map
        (fun assoc ->
          if e.Cq_policy.Zoo.valid_assoc assoc then
            (* [minimize]d because that is what the checker actually sees:
               L* hypotheses are minimal by construction, while the raw
               control-state product of a zoo policy need not be (New1's
               per-line bits collapse at associativity 2). *)
            Some
              ( Printf.sprintf "%s-%d" e.Cq_policy.Zoo.name assoc,
                assoc,
                Mealy.minimize
                  (Cq_policy.Policy.to_mealy (e.Cq_policy.Zoo.make assoc)) )
          else None)
        assocs)
    Cq_policy.Zoo.entries

let test_zoo_passes () =
  List.iter
    (fun (name, assoc, m) ->
      (* BRRIP-4's minimal machine has 898 states; give the symmetry pass
         room so it runs for the whole zoo at these associativities. *)
      let r = AC.check ~max_symmetry_states:1024 ~assoc m in
      Alcotest.(check bool)
        (name ^ ": " ^ AC.report_to_string r)
        true (AC.ok r);
      Alcotest.(check bool) (name ^ ": symmetry ran") true (AC.symmetry_checked r);
      Alcotest.(check (option string)) (name ^ ": diagnose") None
        (AC.diagnose ~assoc m))
    (zoo_machines ())

(* --- Automaton_check: seeded mutations are flagged -------------------- *)

let tables m =
  let n = Mealy.n_states m and k = Mealy.n_inputs m in
  ( Array.init n (fun s -> Array.init k (fun i -> Mealy.next_state m s i)),
    Array.init n (fun s -> Array.init k (fun i -> Mealy.output m s i)) )

let rebuild m next out =
  Mealy.make ~init:(Mealy.init m) ~n_inputs:(Mealy.n_inputs m) ~next ~out

let lru4 () = Cq_policy.Policy.to_mealy (Cq_policy.Zoo.make_exn ~name:"LRU" ~assoc:4)

let expect_violation name pred r =
  Alcotest.(check bool) (name ^ " rejected") false (AC.ok r);
  Alcotest.(check bool)
    (name ^ " flagged: " ^ AC.report_to_string r)
    true
    (List.exists pred r.AC.violations)

let test_mutation_line_evicts () =
  let m = lru4 () in
  let next, out = tables m in
  out.(1).(0) <- Some 0;
  expect_violation "Ln that evicts"
    (function AC.Line_evicts { state = 1; line = 0; _ } -> true | _ -> false)
    (AC.check ~assoc:4 (rebuild m next out))

let test_mutation_evct_none () =
  let m = lru4 () in
  let next, out = tables m in
  out.(0).(4) <- None;
  expect_violation "Evct with no eviction"
    (function AC.Evct_no_eviction { state = 0 } -> true | _ -> false)
    (AC.check ~assoc:4 (rebuild m next out))

let test_mutation_evct_out_of_range () =
  let m = lru4 () in
  let next, out = tables m in
  out.(0).(4) <- Some 4;
  expect_violation "eviction out of range"
    (function AC.Evct_out_of_range { state = 0; line = 4 } -> true | _ -> false)
    (AC.check ~assoc:4 (rebuild m next out))

(* Graft a clone of the initial state onto the machine and redirect one
   transition into it: the clone is trace-equivalent to the original
   state, so the machine stops being minimal. *)
let test_mutation_merged_states () =
  let m = lru4 () in
  let next, out = tables m in
  let n = Mealy.n_states m in
  let clone_next = Array.copy next.(Mealy.init m)
  and clone_out = Array.copy out.(Mealy.init m) in
  let next = Array.append next [| clone_next |]
  and out = Array.append out [| clone_out |] in
  (* Redirect every transition into the init state to the clone instead,
     so the clone is reachable (and init may or may not stay so). *)
  let init = Mealy.init m in
  Array.iter
    (fun row ->
      Array.iteri (fun i s -> if s = init then row.(i) <- n) row)
    next;
  expect_violation "duplicated state"
    (function
      | AC.Not_minimal _ | AC.Unreachable _ -> true
      | _ -> false)
    (AC.check ~assoc:4 (rebuild m next out))

let test_mutation_flipped_transition () =
  (* Flip one transition of LRU-4: the machine stays total, deterministic
     and hit-consistent, but LRU is strictly conjugation-symmetric and a
     single flipped edge cannot preserve that.  The checker degrades the
     symmetry verdict (the machine may still be a legal — if unheard-of —
     policy, so this is a downgrade, not a violation). *)
  let m = lru4 () in
  Alcotest.(check bool) "pristine LRU-4 is strictly symmetric" true
    ((AC.check ~assoc:4 m).AC.symmetry = AC.Strict);
  let next, out = tables m in
  let s = Mealy.init m in
  next.(s).(0) <- next.(s).(1);
  let r = AC.check ~assoc:4 (rebuild m next out) in
  Alcotest.(check bool)
    ("flipped edge loses strictness: " ^ AC.report_to_string r)
    true (r.AC.symmetry <> AC.Strict)

(* A machine that always evicts line 0 is total, consistent, reachable
   and minimal — but treats the lines asymmetrically. *)
let test_mutation_asymmetric () =
  let assoc = 2 in
  let m =
    Mealy.make ~init:0 ~n_inputs:(assoc + 1)
      ~next:[| [| 0; 0; 0 |] |]
      ~out:[| [| None; None; Some 0 |] |]
  in
  expect_violation "fixed-victim policy"
    (function AC.Asymmetric _ -> true | _ -> false)
    (AC.check ~assoc m);
  (* ... and the same check with symmetry off accepts it. *)
  Alcotest.(check bool) "accepted without symmetry" true
    (AC.ok (AC.check ~symmetry:false ~assoc m))

let test_bad_alphabet_short_circuits () =
  let m = lru4 () in
  match (AC.check ~assoc:3 m).AC.violations with
  | [ AC.Bad_alphabet { n_inputs = 5; expected = 4 } ] -> ()
  | v ->
      Alcotest.fail
        (Printf.sprintf "expected a lone Bad_alphabet, got %d violations"
           (List.length v))

(* --- The learning gate ------------------------------------------------ *)

let test_validate_gate_accepts () =
  let report =
    Cq_core.Learn.learn_simulated ~validate:true
      (Cq_policy.Zoo.make_exn ~name:"LRU" ~assoc:2)
  in
  match report.Cq_core.Learn.validation with
  | Some r -> Alcotest.(check bool) "passing verdict attached" true (AC.ok r)
  | None -> Alcotest.fail "validation report missing"

(* A policy that always evicts line 0 satisfies Definition 2.1 (so the
   learner learns it without complaint) but is line-asymmetric — exactly
   the kind of systematically corrupted result conformance testing cannot
   reject.  With [~validate] the gate must turn it into [Invalid]
   (exit code 14) rather than a success. *)
let fixed_victim assoc =
  Cq_policy.Policy.v ~name:"fixed-victim" ~assoc ~init:()
    ~step:(fun () -> function
      | Cq_policy.Types.Line _ -> ((), None)
      | Cq_policy.Types.Evct -> ((), Some 0))
    ()

let test_validate_gate_rejects () =
  (match Cq_core.Learn.run_simulated ~validate:true (fixed_victim 2) with
  | Cq_core.Learn.Partial { failure = Cq_core.Learn.Invalid _ as f; _ } ->
      Alcotest.(check int) "exit code" 14 (Cq_core.Learn.failure_exit_code f)
  | Cq_core.Learn.Partial { failure; _ } ->
      Alcotest.fail
        (Fmt.str "wrong failure class: %a" Cq_core.Learn.pp_failure failure)
  | Cq_core.Learn.Complete _ -> Alcotest.fail "invalid automaton accepted");
  (* ... and the raising API raises. *)
  match Cq_core.Learn.learn_simulated ~validate:true (fixed_victim 2) with
  | _ -> Alcotest.fail "learn_simulated did not raise"
  | exception Cq_core.Learn.Invalid_automaton _ -> ()

(* Without the gate the same run completes: the gate is the only line of
   defence here. *)
let test_validate_gate_off_accepts () =
  match Cq_core.Learn.run_simulated (fixed_victim 2) with
  | Cq_core.Learn.Complete report ->
      Alcotest.(check bool)
        "no validation report" true
        (report.Cq_core.Learn.validation = None)
  | Cq_core.Learn.Partial _ -> Alcotest.fail "ungated run failed"

(* --- Lint ------------------------------------------------------------- *)

module L = Cq_analysis.Lint

let lint_rules src = List.map (fun f -> f.L.rule) (L.lint_source ~file:"x.ml" src)

let test_lint_detects () =
  Alcotest.(check (list string)) "hashtbl add" [ "hashtbl-add" ]
    (lint_rules "let () = Hashtbl.add t k v\n");
  Alcotest.(check (list string)) "wall clock" [ "wall-clock" ]
    (lint_rules "let now = Unix.gettimeofday ()\n");
  Alcotest.(check (list string)) "marshal" [ "marshal-unvalidated" ]
    (lint_rules "let v = Marshal.from_string s 0\n");
  Alcotest.(check (list string)) "domain + ref" [ "domain-shared-state" ]
    (lint_rules "let r = ref 0\nlet d = Domain.spawn (fun () -> incr r)\n")

let test_lint_stripping () =
  (* Patterns inside comments, strings and quoted strings never fire. *)
  Alcotest.(check (list string)) "comment" []
    (lint_rules "(* Hashtbl.add here, and Unix.gettimeofday *)\nlet x = 1\n");
  Alcotest.(check (list string)) "nested comment" []
    (lint_rules "(* outer (* Hashtbl.add *) still out *)\nlet x = 1\n");
  Alcotest.(check (list string)) "string" []
    (lint_rules "let s = \"Hashtbl.add\"\n");
  Alcotest.(check (list string)) "string with escapes" []
    (lint_rules "let s = \"\\\"Hashtbl.add\"\n");
  Alcotest.(check (list string)) "quoted string" []
    (lint_rules "let s = {x|Hashtbl.add|x}\n");
  (* ... while a comment inside a string does not hide real code. *)
  Alcotest.(check (list string)) "comment-opener in string" [ "hashtbl-add" ]
    (lint_rules "let s = \"(*\"\nlet () = Hashtbl.add t k v\n");
  (* add_seq shares the prefix but is a different function. *)
  Alcotest.(check (list string)) "token boundary" []
    (lint_rules "let () = Hashtbl.add_seq t s\n")

let test_lint_allow () =
  Alcotest.(check (list string)) "same line" []
    (lint_rules
       "let () = Hashtbl.add t k v (* cq-lint: allow hashtbl-add: fresh *)\n");
  Alcotest.(check (list string)) "preceding line" []
    (lint_rules
       "(* cq-lint: allow hashtbl-add: fresh key *)\nlet () = Hashtbl.add t k v\n");
  (* The annotation names a rule; a different rule still fires. *)
  Alcotest.(check (list string)) "wrong rule" [ "hashtbl-add" ]
    (lint_rules
       "(* cq-lint: allow wall-clock: no *)\nlet () = Hashtbl.add t k v\n")

let test_lint_allow_requires_reason () =
  (* PR-7: a bare [allow] with no stated reason does not suppress —
     writing the reason is the point of the annotation. *)
  Alcotest.(check (list string)) "reasonless allow fires" [ "hashtbl-add" ]
    (lint_rules "let () = Hashtbl.add t k v (* cq-lint: allow hashtbl-add *)\n");
  Alcotest.(check (list string)) "reasonless allow above fires"
    [ "hashtbl-add" ]
    (lint_rules
       "(* cq-lint: allow hashtbl-add *)\nlet () = Hashtbl.add t k v\n");
  Alcotest.(check (list string)) "dash-style reason suppresses" []
    (lint_rules
       "let () = Hashtbl.add t k v (* cq-lint: allow hashtbl-add \xe2\x80\x94 fresh *)\n");
  (* A longer rule name must not satisfy a shorter rule's allow. *)
  Alcotest.(check (list string)) "rule name is token-bounded" [ "hashtbl-add" ]
    (lint_rules
       "(* cq-lint: allow hashtbl-addendum: reason *)\nlet () = Hashtbl.add t k v\n")

let test_lint_hot_loop () =
  (* Outside a marked region List combinators and closures are fine. *)
  Alcotest.(check (list string)) "no region" []
    (lint_rules "let f xs = List.map (fun x -> x + 1) xs\n");
  (* Inside one, both fire (here: on the same line). *)
  Alcotest.(check (list string)) "in region" [ "hot-loop-alloc" ]
    (lint_rules
       "(* cq-lint: hot-loop *)\nlet f xs = List.map succ xs\n\
        (* cq-lint: end hot-loop *)\nlet g xs = List.map succ xs\n");
  (* [function] is not [fun]; allocation-free walkers stay clean. *)
  Alcotest.(check (list string)) "token boundary" []
    (lint_rules
       "(* cq-lint: hot-loop *)\nlet rec go s = function [] -> s | _ :: w -> \
        go s w\n(* cq-lint: end hot-loop *)\n");
  (* Audited allocation is allowed, and the audit names the rule. *)
  Alcotest.(check (list string)) "allow" []
    (lint_rules
       "(* cq-lint: hot-loop *)\n(* cq-lint: allow hot-loop-alloc — result \
        *)\nlet f xs = List.map succ xs\n(* cq-lint: end hot-loop *)\n")

let test_lint_line_numbers () =
  match L.lint_source ~file:"x.ml" "let a = 1\n\nlet () = Hashtbl.add t k v\n" with
  | [ f ] -> Alcotest.(check int) "line" 3 f.L.line
  | fs -> Alcotest.fail (Printf.sprintf "expected 1 finding, got %d" (List.length fs))

(* stray-artifact is a walk-time rule: it fires on the *presence* of
   scratch state under a linted path, not on source text, so it is
   exercised through [lint_paths] on a throwaway tree. *)
let test_lint_stray_artifact () =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "cq-lint-test-%d" (Unix.getpid ()))
  in
  let scratch = Filename.concat root "wl-scratch-7" in
  Unix.mkdir root 0o755;
  Unix.mkdir scratch 0o755;
  Out_channel.with_open_bin (Filename.concat root "session-1.snap")
    (fun oc -> Out_channel.output_string oc "not a real snapshot");
  Out_channel.with_open_bin (Filename.concat root "clean.ml")
    (fun oc -> Out_channel.output_string oc "let x = 1\n");
  Fun.protect
    ~finally:(fun () ->
      Sys.remove (Filename.concat root "session-1.snap");
      Sys.remove (Filename.concat root "clean.ml");
      Unix.rmdir scratch;
      Unix.rmdir root)
    (fun () ->
      let fs = L.lint_paths [ root ] in
      Alcotest.(check (list string))
        "both the dir and the snapshot are flagged"
        [ "stray-artifact"; "stray-artifact" ]
        (List.map (fun f -> f.L.rule) fs);
      List.iter
        (fun f ->
          Alcotest.(check bool)
            "finding names the artifact" true
            (f.L.excerpt = "session-1.snap" || f.L.excerpt = "wl-scratch-7"))
        fs);
  (* The rule is advertised alongside the source-text rules. *)
  Alcotest.(check bool)
    "rule is listed" true
    (List.mem_assoc "stray-artifact" L.rules)

let suite =
  ( "analysis",
    [
      Alcotest.test_case "check: Example 4.1" `Quick test_check_example_4_1;
      Alcotest.test_case "check: aux blocks" `Quick test_check_aux_blocks;
      Alcotest.test_case "check: rejections" `Quick test_check_rejections;
      Alcotest.test_case "check: capacity" `Quick test_check_capacity;
      Alcotest.test_case "check: guard placement" `Quick
        test_check_guard_placement;
      Alcotest.test_case "differential fuzz (1000 programs)" `Quick
        test_differential_fuzz;
      Alcotest.test_case "simplify shapes" `Quick test_simplify_shapes;
      Alcotest.test_case "zoo passes" `Quick test_zoo_passes;
      Alcotest.test_case "mutation: Ln evicts" `Quick test_mutation_line_evicts;
      Alcotest.test_case "mutation: Evct None" `Quick test_mutation_evct_none;
      Alcotest.test_case "mutation: Evct range" `Quick
        test_mutation_evct_out_of_range;
      Alcotest.test_case "mutation: merged states" `Quick
        test_mutation_merged_states;
      Alcotest.test_case "mutation: flipped transition" `Quick
        test_mutation_flipped_transition;
      Alcotest.test_case "mutation: asymmetric" `Quick test_mutation_asymmetric;
      Alcotest.test_case "bad alphabet" `Quick test_bad_alphabet_short_circuits;
      Alcotest.test_case "validate gate accepts" `Quick
        test_validate_gate_accepts;
      Alcotest.test_case "validate gate rejects" `Quick
        test_validate_gate_rejects;
      Alcotest.test_case "validate gate off" `Quick
        test_validate_gate_off_accepts;
      Alcotest.test_case "lint: detects" `Quick test_lint_detects;
      Alcotest.test_case "lint: stripping" `Quick test_lint_stripping;
      Alcotest.test_case "lint: allow annotations" `Quick test_lint_allow;
      Alcotest.test_case "lint: allow needs a reason" `Quick
        test_lint_allow_requires_reason;
      Alcotest.test_case "lint: hot-loop regions" `Quick test_lint_hot_loop;
      Alcotest.test_case "lint: line numbers" `Quick test_lint_line_numbers;
      Alcotest.test_case "lint: stray artifacts" `Quick
        test_lint_stray_artifact;
    ] )
