(* The CacheQuery command-line tool: an interactive REPL and a batch mode
   over the simulated CPUs, mirroring the paper's frontend (§4.2).

   Interactive commands:
     level L1|L2|L3      switch target level
     set N               switch target set
     slice N             switch target slice (L3)
     cat N               virtually reduce L3 associativity via CAT
     reps N              repetitions for majority voting
     reset F+R | <mbl>   reset sequence applied before each query
     check <mbl>         statically analyse a query without executing it
     info                show current target and configuration
     quit                exit
   anything else is parsed as an MBL expression and executed. *)

let parse_level = function
  | "L1" | "l1" -> Some Cq_hwsim.Cpu_model.L1
  | "L2" | "l2" -> Some Cq_hwsim.Cpu_model.L2
  | "L3" | "l3" -> Some Cq_hwsim.Cpu_model.L3
  | _ -> None

type session = {
  machine : Cq_hwsim.Machine.t;
  mutable level : Cq_hwsim.Cpu_model.level;
  mutable slice : int;
  mutable set : int;
  mutable reps : int;
  mutable reset : Cq_cachequery.Frontend.reset;
  mutable frontend : Cq_cachequery.Frontend.t option;
  check : bool; (* statically analyse each query before executing it *)
  lint_only : bool; (* ... and stop there: never execute *)
  metrics : Cq_util.Metrics.t;
}

let frontend session =
  match session.frontend with
  | Some fe -> fe
  | None ->
      let backend =
        Cq_cachequery.Backend.create ~metrics:session.metrics session.machine
          { Cq_cachequery.Backend.level = session.level;
            slice = session.slice;
            set = session.set }
      in
      let threshold, _, _ = Cq_cachequery.Backend.calibrate backend in
      Printf.printf "# calibrated %s threshold: %d cycles\n%!"
        (Cq_hwsim.Cpu_model.level_to_string session.level)
        threshold;
      let fe =
        Cq_cachequery.Frontend.create ~reset:session.reset
          ~repetitions:session.reps ~metrics:session.metrics backend
      in
      session.frontend <- Some fe;
      fe

let invalidate session = session.frontend <- None

let result_to_string r =
  if Cq_cache.Cache_set.result_is_hit r then "Hit" else "Miss"

(* How a query fared; the REPL prints and carries on, batch mode folds the
   status into the exit code (Rejected -> 3, Failed -> 2). *)
type status = Ran | Rejected | Failed

(* Static analysis of one query at the current target's associativity —
   no frontend (hence no calibration traffic) is needed for this. *)
let check_query session input =
  let assoc = Cq_hwsim.Machine.effective_assoc session.machine session.level in
  match
    Cq_analysis.Mbl_check.check_string ~registry:session.metrics ~assoc input
  with
  | Ok summary ->
      Printf.printf "# check: %s\n%!"
        (Fmt.str "%a" Cq_analysis.Mbl_check.pp_summary summary);
      Ran
  | Error diag ->
      Printf.printf "check error: %s\n%!"
        (Cq_analysis.Mbl_check.diagnostic_to_string diag);
      Rejected
  | exception Cq_mbl.Parser.Parse_error msg ->
      Printf.printf "parse error: %s\n%!" msg;
      Failed

let run_query session input =
  let checked =
    if session.check || session.lint_only then check_query session input
    else Ran
  in
  match checked with
  | (Rejected | Failed) as s -> s
  | Ran when session.lint_only -> Ran
  | Ran -> (
      match Cq_cachequery.Frontend.run_mbl (frontend session) input with
      | results ->
          List.iter
            (fun (q, rs) ->
              Printf.printf "%s -> %s\n%!"
                (Cq_mbl.Expand.query_to_string q)
                (match rs with
                | [] -> "(no profiled access)"
                | rs -> String.concat " " (List.map result_to_string rs)))
            results;
          Ran
      | exception Cq_mbl.Parser.Parse_error msg ->
          Printf.printf "parse error: %s\n%!" msg;
          Failed
      | exception Cq_mbl.Expand.Expansion_error msg ->
          Printf.printf "expansion error: %s\n%!" msg;
          Failed)

let handle_command session line =
  match String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") with
  | [] -> true
  | [ "quit" ] | [ "exit" ] -> false
  | [ "info" ] ->
      let model = Cq_hwsim.Machine.model session.machine in
      Printf.printf "# %s (%s), target %s slice %d set %d, assoc %d, reps %d, reset %s\n%!"
        model.Cq_hwsim.Cpu_model.name model.Cq_hwsim.Cpu_model.codename
        (Cq_hwsim.Cpu_model.level_to_string session.level)
        session.slice session.set
        (Cq_hwsim.Machine.effective_assoc session.machine session.level)
        session.reps
        (Cq_cachequery.Frontend.reset_to_string session.reset);
      true
  | [ "level"; l ] -> (
      match parse_level l with
      | Some level ->
          session.level <- level;
          invalidate session;
          true
      | None ->
          Printf.printf "unknown level %S\n%!" l;
          true)
  | [ "set"; n ] ->
      session.set <- int_of_string n;
      invalidate session;
      true
  | [ "slice"; n ] ->
      session.slice <- int_of_string n;
      invalidate session;
      true
  | [ "reps"; n ] ->
      (* Even counts can tie the majority vote; the frontend rejects them. *)
      (match int_of_string n with
      | n when n >= 1 && (n = 1 || n mod 2 = 1) ->
          session.reps <- n;
          Option.iter
            (fun fe -> Cq_cachequery.Frontend.set_repetitions fe session.reps)
            session.frontend
      | n ->
          Printf.printf
            "error: repetitions must be 1 or an odd count >= 3 (got %d)\n%!" n);
      true
  | [ "cat"; n ] ->
      (match Cq_hwsim.Machine.set_cat_ways session.machine (int_of_string n) with
      | () -> invalidate session
      | exception Failure msg -> Printf.printf "error: %s\n%!" msg);
      true
  | "reset" :: rest ->
      let spec = String.concat " " rest in
      (match spec with
      | "F+R" | "f+r" -> session.reset <- Cq_cachequery.Frontend.Flush_refill
      | "none" -> session.reset <- Cq_cachequery.Frontend.No_reset
      | _ -> (
          match Cq_mbl.Parser.parse_result spec with
          | Ok ast -> session.reset <- Cq_cachequery.Frontend.Sequence ast
          | Error msg -> Printf.printf "parse error: %s\n%!" msg));
      Option.iter
        (fun fe -> Cq_cachequery.Frontend.set_reset fe session.reset)
        session.frontend;
      true
  | "check" :: rest when rest <> [] ->
      ignore (check_query session (String.concat " " rest));
      true
  | _ ->
      ignore (run_query session line);
      true

let interactive session =
  Printf.printf
    "CacheQuery (simulated %s). MBL queries or commands (info, level, set, \
     slice, cat, reps, reset, check, quit).\n%!"
    (Cq_hwsim.Machine.model session.machine).Cq_hwsim.Cpu_model.name;
  let continue = ref true in
  while !continue do
    Printf.printf "> %!";
    match In_channel.input_line In_channel.stdin with
    | None -> continue := false
    | Some line -> continue := handle_command session line
  done

(* Batch mode is scripted: a query that cannot run must not exit 0.
   Exit 2 mirrors the usual usage-error convention; a static rejection by
   the analyser ($(b,--check)) exits 3, so scripts can tell "this query
   can never run at this associativity" from a runtime failure (the
   learning CLIs reserve 10-14 for the supervisor's failure taxonomy). *)
let status_exit_code = function Ran -> 0 | Rejected -> 3 | Failed -> 2

let batch session sets query =
  List.fold_left
    (fun worst set ->
      session.set <- set;
      invalidate session;
      Printf.printf "--- set %d ---\n%!" set;
      match run_query session query with
      | Ran -> worst
      | Failed -> Failed
      | Rejected -> if worst = Failed then worst else Rejected)
    Ran sets

(* --- Command line --------------------------------------------------------- *)

open Cmdliner

let cpu_arg =
  let doc = "Simulated CPU: haswell, skylake or kabylake." in
  Arg.(value & opt string "skylake" & info [ "cpu" ] ~doc)

let level_arg =
  let doc = "Target cache level (L1, L2, L3)." in
  Arg.(value & opt string "L1" & info [ "level" ] ~doc)

let set_arg = Arg.(value & opt int 0 & info [ "set" ] ~doc:"Target set index.")
let slice_arg = Arg.(value & opt int 0 & info [ "slice" ] ~doc:"Target slice (L3).")
let reps_arg = Arg.(value & opt int 1 & info [ "reps" ] ~doc:"Repetitions (majority vote).")

let noise_arg =
  Arg.(value & flag & info [ "noise" ] ~doc:"Enable measurement noise in the simulator.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulator seed.")

let query_arg =
  let doc = "Run this MBL query in batch mode and exit (otherwise: REPL)." in
  Arg.(value & opt (some string) None & info [ "query"; "q" ] ~doc)

let check_arg =
  let doc =
    "Statically analyse each query before executing it (exact expansion \
     cardinality, footprint, profiled-access count); a query the analyser \
     rejects is never executed and exits 3."
  in
  Arg.(value & flag & info [ "check" ] ~doc)

let lint_only_arg =
  let doc =
    "Statically analyse queries $(i,without) executing anything (implies \
     $(b,--check)); no calibration traffic is generated.  Exit 0 if every \
     query is accepted, 3 on a rejection."
  in
  Arg.(value & flag & info [ "lint-only" ] ~doc)

let sets_arg =
  let doc = "Comma-separated set indices (or a-b ranges) for batch mode." in
  Arg.(value & opt (some string) None & info [ "sets" ] ~doc)

let trace_arg =
  let doc =
    "Record a structured execution trace and write it to $(docv) as Chrome \
     trace_event JSON (load it in Perfetto or about://tracing)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write the run's metrics registry (frontend and backend counters and \
     histograms) to $(docv) as JSON."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let parse_sets spec =
  String.split_on_char ',' spec
  |> List.concat_map (fun part ->
         match String.index_opt part '-' with
         | Some i ->
             let lo = int_of_string (String.sub part 0 i) in
             let hi =
               int_of_string (String.sub part (i + 1) (String.length part - i - 1))
             in
             List.init (hi - lo + 1) (fun k -> lo + k)
         | None -> [ int_of_string part ])

let main cpu level set slice reps noise seed query sets check lint_only trace
    metrics_path =
  (* Flush observability output on every exit path: batch mode exits 2 on
     a failed query (at_exit still runs), and SIGINT/SIGTERM are converted
     into an exit so a ^C'd or service-managed run keeps its files too. *)
  let registry = Cq_util.Metrics.create () in
  if trace <> None || metrics_path <> None then
    Cq_util.Shutdown.exit_on_signals ();
  (match trace with
  | None -> ()
  | Some path ->
      Cq_util.Trace.enable ();
      at_exit (fun () -> Cq_util.Trace.export_chrome ~path ()));
  (match metrics_path with
  | None -> ()
  | Some path ->
      at_exit (fun () -> Cq_util.Metrics.write_json ~path registry));
  if reps < 1 || (reps <> 1 && reps mod 2 = 0) then
    `Error
      (false,
       Printf.sprintf "repetitions must be 1 or an odd count >= 3 (got %d)" reps)
  else
  match Cq_hwsim.Cpu_model.by_name cpu with
  | None -> `Error (false, Printf.sprintf "unknown CPU %S" cpu)
  | Some model -> (
      match parse_level level with
      | None -> `Error (false, Printf.sprintf "unknown level %S" level)
      | Some level ->
          let noise_cfg =
            if noise then Cq_hwsim.Machine.default_noise
            else Cq_hwsim.Machine.quiet_noise
          in
          let machine =
            Cq_hwsim.Machine.create ~seed:(Int64.of_int seed) ~noise:noise_cfg model
          in
          let session =
            {
              machine;
              level;
              slice;
              set;
              reps;
              reset = Cq_cachequery.Frontend.Flush_refill;
              frontend = None;
              check = check || lint_only;
              lint_only;
              metrics = registry;
            }
          in
          (match (query, sets) with
          | Some q, Some ss -> (
              match batch session (parse_sets ss) q with
              | Ran -> ()
              | s -> exit (status_exit_code s))
          | Some q, None -> (
              match run_query session q with
              | Ran -> ()
              | s -> exit (status_exit_code s))
          | None, _ -> interactive session);
          `Ok ())

let cmd =
  let doc = "query (simulated) hardware cache sets with MBL" in
  Cmd.v
    (Cmd.info "cachequery" ~doc)
    Term.(
      ret
        (const main $ cpu_arg $ level_arg $ set_arg $ slice_arg $ reps_arg
       $ noise_arg $ seed_arg $ query_arg $ sets_arg $ check_arg
       $ lint_only_arg $ trace_arg $ metrics_arg))

let () = exit (Cmd.eval cmd)
