(* The explanation synthesizer CLI (§5/§8): take a policy (from the zoo, or
   learned from a simulated cache first), synthesize a high-level program
   explaining it, and print the program in the style of Figure 5. *)

open Cmdliner

let main policy assoc deadline learn_first trace metrics_path =
  let registry = Cq_util.Metrics.create () in
  (* Flush observability output on every exit path (the deadline path
     exits 12; at_exit still runs). *)
  (match trace with
  | None -> ()
  | Some path ->
      Cq_util.Trace.enable ();
      at_exit (fun () -> Cq_util.Trace.export_chrome ~path ()));
  (match metrics_path with
  | None -> ()
  | Some path ->
      at_exit (fun () -> Cq_util.Metrics.write_json ~path registry));
  match Cq_policy.Zoo.make ~name:policy ~assoc with
  | Error msg -> `Error (false, msg)
  | Ok p ->
      let machine =
        if learn_first then begin
          Fmt.pr "learning %s (associativity %d) from a simulated cache...@." policy assoc;
          let report =
            Cq_core.Learn.learn_simulated ~identify:false ~metrics:registry p
          in
          Fmt.pr "learned %d states in %a@." report.Cq_core.Learn.states
            Cq_util.Clock.pp_duration report.Cq_core.Learn.seconds;
          report.Cq_core.Learn.machine
        end
        else Cq_policy.Policy.to_mealy p
      in
      Fmt.pr "synthesizing an explanation for %s (%d states)...@." policy
        (Cq_automata.Mealy.n_states machine);
      let r = Cq_synth.Search.synthesize ~deadline machine in
      (match r.Cq_synth.Search.outcome with
      | Cq_synth.Search.Found prog ->
          Fmt.pr "found with the %s template in %a (%d candidates):@.@.%a@."
            r.Cq_synth.Search.template Cq_util.Clock.pp_duration
            r.Cq_synth.Search.seconds r.Cq_synth.Search.candidates_tried
            Cq_synth.Rules.pp prog;
          let ok =
            Cq_automata.Mealy.equivalent machine
              (Cq_policy.Policy.to_mealy (Cq_synth.Rules.to_policy prog))
          in
          Fmt.pr "validation (bisimulation against the automaton): %s@."
            (if ok then "exact match" else "MISMATCH (bug)")
      | Cq_synth.Search.Not_expressible ->
          Fmt.pr
            "not expressible in the template (searched %d candidates in %a) — \
             e.g. PLRU's tree state has no per-line age encoding@."
            r.Cq_synth.Search.candidates_tried Cq_util.Clock.pp_duration
            r.Cq_synth.Search.seconds
      | Cq_synth.Search.Timeout ->
          Fmt.pr "timeout after %a (%d candidates)@." Cq_util.Clock.pp_duration
            r.Cq_synth.Search.seconds r.Cq_synth.Search.candidates_tried;
          (* Same exit code as the learning tools' Budget_exhausted, so
             campaign scripts treat all deadline trips alike. *)
          exit
            (Cq_core.Learn.failure_exit_code
               (Cq_core.Learn.Budget_exhausted "synthesis deadline")));
      `Ok ()

let policy_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"POLICY" ~doc:"Policy name (see polca --help).")

let assoc_arg = Arg.(value & opt int 4 & info [ "assoc" ] ~doc:"Associativity.")
let deadline_arg = Arg.(value & opt float 300.0 & info [ "deadline" ] ~doc:"Search deadline in seconds.")

let learn_arg =
  Arg.(value & flag & info [ "learn" ] ~doc:"Learn the automaton from a simulated cache first (end-to-end pipeline).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a structured execution trace and write it to $(docv) as \
           Chrome trace_event JSON (load it in Perfetto or about://tracing).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the run's metrics registry to $(docv) as JSON (populated by \
           the learning pipeline when $(b,--learn) is given).")

let cmd =
  let doc = "synthesize human-readable explanations of replacement policies" in
  Cmd.v
    (Cmd.info "synthesize" ~doc)
    Term.(
      ret
        (const main $ policy_arg $ assoc_arg $ deadline_arg $ learn_arg
       $ trace_arg $ metrics_arg))

let () = exit (Cmd.eval cmd)
