(* cq-lint: the repo's self-analysis pass (see lib/analysis/lint.ml for
   the rules).  Exits 0 when clean, 1 when any finding survives its
   allow-annotations, 2 on usage errors — so CI can gate on it. *)

open Cmdliner

let paths_arg =
  let doc =
    "Files or directories to lint (directories are walked recursively for \
     .ml/.mli files, skipping _build)."
  in
  Arg.(value & pos_all string [ "lib"; "bin"; "test" ] & info [] ~docv:"PATH" ~doc)

let out_arg =
  let doc = "Also write the findings to $(docv) as a JSON report." in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)

let list_rules_arg =
  Arg.(value & flag & info [ "rules" ] ~doc:"List the lint rules and exit.")

let main paths out list_rules =
  if list_rules then begin
    List.iter
      (fun (name, descr) -> Printf.printf "%-22s %s\n" name descr)
      Cq_analysis.Lint.rules;
    `Ok ()
  end
  else
    match List.filter (fun p -> not (Sys.file_exists p)) paths with
    | missing :: _ -> `Error (false, Printf.sprintf "no such path: %s" missing)
    | [] ->
        let findings = Cq_analysis.Lint.lint_paths paths in
        Option.iter
          (fun path ->
            Cq_util.Atomic_file.write ~path
              (Cq_analysis.Lint.report_json findings))
          out;
        List.iter
          (fun f -> Fmt.pr "@[<v>%a@]@." Cq_analysis.Lint.pp_finding f)
          findings;
        (match findings with
        | [] ->
            Printf.printf "cq-lint: clean (%s)\n" (String.concat " " paths);
            `Ok ()
        | fs ->
            Printf.printf "cq-lint: %d finding(s)\n" (List.length fs);
            exit 1)

let cmd =
  let doc = "lint this repository's OCaml sources for known hazard patterns" in
  Cmd.v
    (Cmd.info "cq-lint" ~doc)
    Term.(ret (const main $ paths_arg $ out_arg $ list_rules_arg))

let () = exit (Cmd.eval cmd)
