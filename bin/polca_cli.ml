(* The Polca command-line tool: learn a replacement policy automaton either
   from a software-simulated cache (§6) or from a simulated CPU through
   CacheQuery (§7), identify it against the policy zoo, and optionally dump
   it as a DOT graph. *)

open Cmdliner

(* Failures in the supervisor's taxonomy exit with distinct codes
   (Transient 10, Diverged 11, Budget_exhausted 12, Worker_lost 13,
   Invalid 14), so campaign scripts can branch without parsing stderr. *)
let exit_partial failure =
  Fmt.epr "polca: %a@." Cq_core.Learn.pp_failure failure;
  exit (Cq_core.Learn.failure_exit_code failure)

let snapshot_policy_of snapshot snapshot_every =
  Option.map
    (fun path ->
      Cq_core.Learn.snapshot_policy ?every_queries:snapshot_every path)
    snapshot

(* Observability hooks: enable tracing up front and flush trace + metrics
   on every exit path, including the distinct-exit-code failure paths
   (at_exit runs on [exit 10..13] too) and SIGINT/SIGTERM — a killed
   campaign run keeps its trace instead of losing it to the default
   signal disposition. *)
let setup_observability trace metrics registry =
  if trace <> None || metrics <> None then Cq_util.Shutdown.exit_on_signals ();
  (match trace with
  | None -> ()
  | Some path ->
      Cq_util.Trace.enable ();
      at_exit (fun () -> Cq_util.Trace.export_chrome ~path ()));
  match metrics with
  | None -> ()
  | Some path ->
      at_exit (fun () -> Cq_util.Metrics.write_json ~path registry)

(* --analyze: run the static security pass (Cq_analysis.Attack) over the
   machine a learn produced.  With a ground-truth policy at hand
   (simulated mode) every synthesized sequence is additionally verified
   dynamically — replay paths and hwsim — before the report is shown. *)
let run_analysis ?policy ~name machine =
  let r = Cq_analysis.Attack.analyze ~name machine in
  Fmt.pr "%a@." Cq_analysis.Attack.pp_report r;
  Option.iter
    (fun p ->
      (match Cq_analysis.Attack.verify p r with
      | Ok () -> Fmt.pr "analysis verified against the replay paths@."
      | Error e ->
          Fmt.epr "polca: analysis verification failed: %s@." e;
          exit 1);
      match Cq_analysis.Attack.verify_hwsim p r with
      | Ok () -> Fmt.pr "analysis verified against hwsim@."
      | Error e ->
          Fmt.epr "polca: hwsim verification failed: %s@." e;
          exit 1)
    policy

let learn_simulated policy assoc depth validate quotient analyze dot snapshot
    snapshot_every resume deadline query_budget metrics =
  match Cq_policy.Zoo.make ~name:policy ~assoc with
  | Error msg -> `Error (false, msg)
  | Ok p -> (
      match
        Cq_core.Learn.run_simulated
          ~equivalence:(Cq_core.Learn.W_method depth)
          ~validate ~quotient ~metrics
          ?snapshot:(snapshot_policy_of snapshot snapshot_every)
          ?resume
          ~deadline:(Cq_util.Clock.deadline_of deadline)
          ?query_budget p
      with
      | Cq_core.Learn.Partial { failure; snapshot = snap; _ } ->
          Option.iter (fun s -> Fmt.epr "polca: snapshot at %s@." s) snap;
          exit_partial failure
      | Cq_core.Learn.Complete report ->
          Fmt.pr "%a@." Cq_core.Learn.pp_report report;
          Option.iter
            (fun path ->
              Out_channel.with_open_text path (fun oc ->
                  Out_channel.output_string oc
                    (Cq_automata.Mealy.to_dot
                       ~input_label:(Cq_policy.Types.input_label ~assoc)
                       ~output_label:Cq_policy.Types.output_label
                       report.Cq_core.Learn.machine));
              Fmt.pr "wrote %s@." path)
            dot;
          if analyze then
            run_analysis ~policy:p ~name:policy
              report.Cq_core.Learn.machine;
          `Ok ())

let learn_hardware cpu level set slice cat depth noise validate quotient
    analyze dot snapshot snapshot_every resume deadline query_budget metrics =
  match Cq_hwsim.Cpu_model.by_name cpu with
  | None -> `Error (false, Printf.sprintf "unknown CPU %S" cpu)
  | Some model ->
      let noise_cfg =
        if noise then Cq_hwsim.Machine.default_noise
        else Cq_hwsim.Machine.quiet_noise
      in
      let machine = Cq_hwsim.Machine.create ~noise:noise_cfg model in
      let run =
        Cq_core.Hardware.learn_set machine level ~slice ~set ?cat_ways:cat
          ~equivalence:(Cq_core.Learn.W_method depth)
          ~check_hits:false ~validate ~quotient
          ~repetitions:(if noise then 5 else 1)
          ~metrics
          ?snapshot:(snapshot_policy_of snapshot snapshot_every)
          ?resume ?deadline ?query_budget
      in
      Fmt.pr "%s %s slice %d set %d (assoc %d%s): %a@." run.Cq_core.Hardware.cpu
        (Cq_hwsim.Cpu_model.level_to_string run.Cq_core.Hardware.level)
        run.Cq_core.Hardware.slice run.Cq_core.Hardware.set
        run.Cq_core.Hardware.assoc
        (if run.Cq_core.Hardware.cat then ", CAT" else "")
        Cq_core.Hardware.pp_outcome run.Cq_core.Hardware.outcome;
      (match run.Cq_core.Hardware.outcome with
      | Cq_core.Hardware.Learned { report; _ } ->
          Fmt.pr "%a@." Cq_core.Learn.pp_report report;
          Option.iter
            (fun path ->
              Out_channel.with_open_text path (fun oc ->
                  Out_channel.output_string oc
                    (Cq_automata.Mealy.to_dot
                       ~input_label:
                         (Cq_policy.Types.input_label
                            ~assoc:run.Cq_core.Hardware.assoc)
                       ~output_label:Cq_policy.Types.output_label
                       report.Cq_core.Learn.machine));
              Fmt.pr "wrote %s@." path)
            dot;
          if analyze then
            (* No ground-truth policy in hardware mode: the report stands
               on the learned machine alone (identification may still
               name it); verification needs a zoo policy. *)
            run_analysis
              ~name:
                (Printf.sprintf "%s-%s" run.Cq_core.Hardware.cpu
                   (Cq_hwsim.Cpu_model.level_to_string
                      run.Cq_core.Hardware.level))
              report.Cq_core.Learn.machine
      | Cq_core.Hardware.Partial { failure; snapshot = snap; _ } ->
          Option.iter (fun s -> Fmt.epr "polca: snapshot at %s@." s) snap;
          exit_partial failure
      | Cq_core.Hardware.Failed _ -> exit 1);
      `Ok ()

let policy_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "simulate" ] ~doc:"Learn from a software-simulated cache running this policy.")

let assoc_arg = Arg.(value & opt int 4 & info [ "assoc" ] ~doc:"Associativity (simulated cache).")
let depth_arg = Arg.(value & opt int 1 & info [ "depth" ] ~doc:"Conformance-test depth k.")
let cpu_arg = Arg.(value & opt string "skylake" & info [ "cpu" ] ~doc:"Simulated CPU for hardware mode.")

let level_arg =
  let level_conv : Cq_hwsim.Cpu_model.level Arg.conv =
    Arg.conv
      ~docv:"LEVEL"
      ( (fun s ->
          match String.uppercase_ascii s with
          | "L1" -> Ok Cq_hwsim.Cpu_model.L1
          | "L2" -> Ok Cq_hwsim.Cpu_model.L2
          | "L3" -> Ok Cq_hwsim.Cpu_model.L3
          | _ -> Error (`Msg "expected L1, L2 or L3")),
        fun ppf l -> Fmt.string ppf (Cq_hwsim.Cpu_model.level_to_string l) )
  in
  Arg.(value & opt level_conv Cq_hwsim.Cpu_model.L1 & info [ "level" ] ~doc:"Cache level.")

let set_arg = Arg.(value & opt int 0 & info [ "set" ] ~doc:"Target set.")
let slice_arg = Arg.(value & opt int 0 & info [ "slice" ] ~doc:"Target slice.")
let cat_arg = Arg.(value & opt (some int) None & info [ "cat" ] ~doc:"Reduce L3 ways via CAT.")
let noise_arg = Arg.(value & flag & info [ "noise" ] ~doc:"Enable simulator noise (adds repetitions).")

let check_arg =
  Arg.(
    value
    & flag
    & info [ "check" ]
        ~doc:
          "Model-check the learned automaton against the policy axioms \
           (hit consistency, reachability, minimality, line-permutation \
           symmetry) before accepting it; a violation exits 14 and, in \
           hardware mode, is first retried with escalated voting.")
let quotient_arg =
  Arg.(
    value
    & flag
    & info [ "quotient" ]
        ~doc:
          "Learn modulo verified line-relabeling symmetry: candidate \
           relabelings are probed against the oracle, and membership \
           queries are canonicalized through the verified group before \
           reaching the query cache, collapsing up-to-assoc! symmetric \
           experiments into one real execution.  Sound for asymmetric \
           policies (degrades to the identity).")

let analyze_arg =
  Arg.(
    value
    & flag
    & info [ "analyze" ]
        ~doc:
          "After learning, run the static security analysis over the \
           learned automaton: minimal eviction sets, stealthy \
           hit/miss-controlling sequences and leakage measures \
           (cq-attack's pass).  In simulated mode every synthesized \
           sequence is first verified dynamically against the replay \
           paths and hwsim.")

let dot_arg = Arg.(value & opt (some string) None & info [ "dot" ] ~doc:"Write learned automaton to this DOT file.")

let snapshot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot" ]
        ~doc:
          "Write learning-session snapshots to this file (atomically), so a \
           crashed or killed run can be resumed with $(b,--resume).")

let snapshot_every_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "snapshot-every" ]
        ~doc:"Snapshot after this many hardware queries (default 500).")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ]
        ~doc:
          "Resume a crashed run from this snapshot file; the resumed run \
           replays deterministically and produces the identical automaton.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ]
        ~doc:
          "Wall-clock budget in seconds for the whole run; exceeding it \
           exits 12 after writing a final snapshot.")

let query_budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "query-budget" ]
        ~doc:
          "Maximum hardware queries; exceeding it exits 12 after writing a \
           final snapshot.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a structured execution trace and write it to $(docv) as \
           Chrome trace_event JSON (load it in Perfetto or about://tracing).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the run's metrics registry (counters and histograms across \
           the whole pipeline) to $(docv) as JSON.")

let main policy assoc cpu level set slice cat depth noise check quotient
    analyze dot snapshot snapshot_every resume deadline query_budget trace
    metrics_path =
  let registry = Cq_util.Metrics.create () in
  setup_observability trace metrics_path registry;
  try
    match policy with
    | Some name ->
        learn_simulated name assoc depth check quotient analyze dot snapshot
          snapshot_every resume deadline query_budget registry
    | None ->
        learn_hardware cpu level set slice cat depth noise check quotient
          analyze dot snapshot snapshot_every resume deadline query_budget
          registry
  with Cq_core.Session.Corrupt msg -> `Error (false, msg)

let cmd =
  let doc = "learn cache replacement policies (Polca + LearnLib-style L*)" in
  Cmd.v
    (Cmd.info "polca" ~doc)
    Term.(
      ret
        (const main $ policy_arg $ assoc_arg $ cpu_arg $ level_arg $ set_arg
       $ slice_arg $ cat_arg $ depth_arg $ noise_arg $ check_arg
       $ quotient_arg $ analyze_arg $ dot_arg
       $ snapshot_arg $ snapshot_every_arg $ resume_arg $ deadline_arg
       $ query_budget_arg $ trace_arg $ metrics_arg))

let () = exit (Cmd.eval cmd)
