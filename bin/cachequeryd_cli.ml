(* cachequeryd: the learning-as-a-service daemon.

   Serves concurrent learning/query sessions over length-prefixed JSON
   frames on a Unix-domain socket (optionally also TCP).  Hardware time
   is fairly scheduled across sessions; learns snapshot continuously and
   resume byte-identically after a crash or shutdown — see
   DESIGN.md, "Service layer". *)

open Cmdliner

let main socket tcp_port tcp_addr workers state_dir max_inflight snapshot_every
    trace metrics_path faults faults_seed breaker_threshold breaker_cooldown =
  let registry = Cq_util.Metrics.create () in
  (* Deterministic chaos: arm the ambient fault registry before anything
     can hit an injection site.  The schedule is seeded, so the same
     --faults/--faults-seed pair reproduces the same failures. *)
  (match faults with
  | None -> ()
  | Some spec -> (
      match Cq_util.Faults.of_spec ~seed:faults_seed spec with
      | Ok reg -> Cq_util.Faults.set_ambient (Some reg)
      | Error msg ->
          Fmt.epr "cachequeryd: bad --faults spec: %s@.%s@." msg
            Cq_util.Faults.spec_syntax;
          exit 2));
  (* Flush observability artefacts on every exit path; the graceful-stop
     sequence below reaches [at_exit] through a normal return, and
     SIGINT/SIGTERM are converted into the same graceful stop rather than
     killing the process mid-write. *)
  (match trace with
  | None -> ()
  | Some path ->
      Cq_util.Trace.enable ();
      at_exit (fun () -> Cq_util.Trace.export_chrome ~path ()));
  (match metrics_path with
  | None -> ()
  | Some path -> at_exit (fun () -> Cq_util.Metrics.write_json ~path registry));
  let tcp = Option.map (fun port -> (tcp_addr, port)) tcp_port in
  let cfg =
    Cq_service.Server.config ?tcp ~workers ~max_inflight ~snapshot_every
      ~breaker_threshold ~breaker_cooldown ~state_dir socket
  in
  let server = Cq_service.Server.create ~metrics:registry cfg in
  (* Graceful shutdown on SIGINT/SIGTERM: stop accepting, park live
     learns at their next probe (final snapshot written), drain, flush,
     exit.  [request_stop] only sets a flag — safe from a handler. *)
  Cq_util.Shutdown.notify_on_signals (fun _signo ->
      Cq_service.Server.request_stop server);
  (try Cq_service.Server.run server
   with Unix.Unix_error (err, fn, arg) ->
     Fmt.epr "cachequeryd: %s %s: %s@." fn arg (Unix.error_message err);
     exit 1);
  `Ok ()

let socket_arg =
  Arg.(
    value
    & opt string "cachequeryd.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket to listen on.")

let tcp_port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tcp-port" ] ~docv:"PORT" ~doc:"Also listen on this TCP port.")

let tcp_addr_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "tcp-addr" ] ~docv:"ADDR" ~doc:"TCP bind address.")

let workers_arg =
  Arg.(
    value
    & opt int 2
    & info [ "workers" ] ~docv:"N" ~doc:"Learning worker threads.")

let state_dir_arg =
  Arg.(
    value
    & opt string "cachequeryd-state"
    & info [ "state-dir" ] ~docv:"DIR"
        ~doc:
          "Session snapshots live here; a later daemon over the same \
           directory resumes interrupted learns byte-identically.")

let max_inflight_arg =
  Arg.(
    value
    & opt int 8
    & info [ "max-inflight" ] ~docv:"N"
        ~doc:
          "Queued + running learns before $(b,learn.start) answers \
           $(i,busy).")

let snapshot_every_arg =
  Arg.(
    value
    & opt int 500
    & info [ "snapshot-every" ] ~docv:"QUERIES"
        ~doc:"Snapshot cadence in hardware queries.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a structured execution trace and write it to $(docv) as \
           Chrome trace_event JSON on exit (including signal-driven \
           shutdown).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the daemon's metrics registry (the \"service.\" series: \
           request latencies, gate waits, learn outcomes) to $(docv) as \
           JSON on exit.")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Arm deterministic fault injection for chaos testing. $(docv) is \
           semicolon-separated $(i,SITE:SCHEDULE) entries, e.g. \
           $(b,service.worker.kill:reach=40;frame.write.torn:nth=3,limit=1). \
           Schedules: $(b,nth=K), $(b,every=K), $(b,first=K), $(b,p=F), \
           $(b,reach=K); optional $(b,limit=N) caps total firings.")

let faults_seed_arg =
  Arg.(
    value
    & opt int 0
    & info [ "faults-seed" ] ~docv:"N"
        ~doc:
          "Seed for probabilistic fault schedules; the same \
           $(b,--faults)/$(b,--faults-seed) pair reproduces the same \
           failures.")

let breaker_threshold_arg =
  Arg.(
    value
    & opt int 5
    & info [ "breaker-threshold" ] ~docv:"N"
        ~doc:
          "Consecutive backend-attributable learn failures before the \
           circuit breaker trips and $(b,learn.start) answers \
           $(i,degraded).")

let breaker_cooldown_arg =
  Arg.(
    value
    & opt float 2.0
    & info [ "breaker-cooldown" ] ~docv:"SECONDS"
        ~doc:"How long the tripped breaker sheds load before probing.")

let cmd =
  let doc = "serve cache-replacement-policy learning over a socket" in
  Cmd.v
    (Cmd.info "cachequeryd" ~doc)
    Term.(
      ret
        (const main $ socket_arg $ tcp_port_arg $ tcp_addr_arg $ workers_arg
       $ state_dir_arg $ max_inflight_arg $ snapshot_every_arg $ trace_arg
       $ metrics_arg $ faults_arg $ faults_seed_arg $ breaker_threshold_arg
       $ breaker_cooldown_arg))

let () = exit (Cmd.eval cmd)
