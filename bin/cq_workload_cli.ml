(* cq-workload: trace-driven workload evaluation.

   Replays spec-described traces through zoo policies (and optionally
   through machines produced by the learner, on the compiled fast path),
   tabulating hit rates against the Belady-OPT offline bound, with an
   optional per-state miss attribution table.

   The output is deterministic for fixed flags — no timing, no ambient
   randomness — so CI diffs it against checked-in expectations. *)

open Cmdliner
module W = Cq_workload

let default_traces assoc =
  [
    Printf.sprintf "zipf:n=%d,alpha=1.2,len=20000,seed=1" (8 * assoc);
    Printf.sprintf "uniform:n=%d,len=20000,seed=2" (2 * assoc);
    Printf.sprintf "seq:n=%d,len=20000" (2 * assoc);
    Printf.sprintf "stride:n=%d,stride=3,len=20000" (3 * assoc);
    "anti:len=20000";
  ]

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("cq-workload: " ^ msg); exit 2) fmt

let run assoc policies traces learned attr cold top =
  let policies = if policies = [] then [ "LRU"; "FIFO"; "PLRU"; "MRU" ] else policies in
  let specs = if traces = [] then default_traces assoc else traces in
  let traces =
    List.map
      (fun spec ->
        match W.Trace.of_spec ~assoc spec with
        | Ok t -> t
        | Error msg -> fail "bad trace spec %S: %s" spec msg)
      specs
  in
  let subjects =
    List.map
      (fun name ->
        match Cq_policy.Zoo.make ~name ~assoc with
        | Ok p -> (name, p)
        | Error msg -> fail "%s" msg)
      policies
  in
  let initial = if cold then Some [||] else None in
  let rows =
    if learned then
      (* Learn each policy, then replay the learned machine on the
         compiled path — cross-checked against the policy instance so a
         divergence fails loudly rather than skewing the table. *)
      List.concat_map
        (fun (name, p) ->
          let report = Cq_core.Learn.learn_simulated ~identify:false p in
          let c = Cq_automata.Mealy.compile report.Cq_core.Learn.machine in
          List.iter
            (fun (tr : W.Trace.t) ->
              let o_p = W.Replay.policy ?initial p tr.W.Trace.blocks in
              let o_c = W.Replay.compiled ?initial c tr.W.Trace.blocks in
              if not (Bytes.equal o_p.W.Replay.stream o_c.W.Replay.stream) then
                fail "learned %s diverges from the policy on %s" name
                  tr.W.Trace.label)
            traces;
          W.Eval.machines ?initial [ (name ^ "*", c) ] traces)
        subjects
    else W.Eval.policies ?initial subjects traces
  in
  W.Eval.pp_table Format.std_formatter rows;
  if attr then
    List.iter
      (fun (name, p) ->
        let c = Cq_automata.Mealy.compile (Cq_policy.Policy.to_mealy p) in
        let a = W.Replay.attribution c in
        List.iter
          (fun (tr : W.Trace.t) ->
            ignore (W.Replay.compiled ?initial ~attr:a c tr.W.Trace.blocks))
          traces;
        Format.printf "@.miss attribution: %s (%d states, all traces)@." name
          (Cq_automata.Mealy.compiled_n_states c);
        W.Eval.pp_attribution ~top Format.std_formatter a)
      subjects

let assoc_arg =
  Arg.(value & opt int 8 & info [ "assoc" ] ~docv:"N" ~doc:"Associativity.")

let policy_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "policy"; "p" ] ~docv:"NAME"
        ~doc:
          "Zoo policy to replay (repeatable; default LRU, FIFO, PLRU, MRU).")

let trace_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "trace"; "t" ] ~docv:"SPEC"
        ~doc:
          (Printf.sprintf
             "Trace spec, repeatable: %s.  Default: a five-trace suite \
              (zipf, uniform, seq, stride, anti) of 20k accesses each."
             W.Trace.spec_syntax))

let learned_arg =
  Arg.(
    value & flag
    & info [ "learned" ]
        ~doc:
          "Learn each policy first and replay the $(i,learned) machine on \
           the compiled path (cross-checked against the policy; subjects \
           are starred in the table).")

let attr_arg =
  Arg.(
    value & flag
    & info [ "attr" ]
        ~doc:
          "Print the per-state miss attribution table (which automaton \
           states absorbed the misses), aggregated over all traces.")

let cold_arg =
  Arg.(
    value & flag
    & info [ "cold" ]
        ~doc:
          "Start from an empty set (cold misses fill invalid ways) instead \
           of the standard full initial content.")

let top_arg =
  Arg.(
    value & opt int 8
    & info [ "top" ] ~docv:"N" ~doc:"Rows in the attribution table.")

let cmd =
  let doc = "replay synthetic workloads through policies vs Belady-OPT" in
  Cmd.v
    (Cmd.info "cq-workload" ~doc)
    Term.(
      const run $ assoc_arg $ policy_arg $ trace_arg $ learned_arg $ attr_arg
      $ cold_arg $ top_arg)

let () = exit (Cmd.eval cmd)
