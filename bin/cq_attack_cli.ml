(* cq-attack: static security analysis of replacement-policy automata.

   Input is a policy automaton from any of the pipeline's sources — a
   zoo policy name (ground truth), a DOT file as written by polca
   [--dot], or a learning-session snapshot (resumed to completion in
   simulation, so the analyzed machine is the one the learner actually
   produces).  Output is the attack report: minimal eviction sets,
   stealthy hit/miss-controlling sequences and leakage measures, as a
   pretty table/report and optionally JSON.

   Whenever a ground-truth policy is at hand, every synthesized sequence
   is verified dynamically before anything is printed: replayed through
   the three Replay paths and through hwsim, byte-for-byte against the
   predicted hit/miss stream.  Use --no-verify to skip (e.g. for very
   large machines). *)

open Cmdliner
module Attack = Cq_analysis.Attack

let fail fmt = Printf.ksprintf (fun msg -> `Error (false, msg)) fmt

let verified policy report no_verify =
  match policy with
  | None -> Ok `Unverified
  | Some p when no_verify -> Ok (`Skipped p)
  | Some p -> (
      match
        (Attack.verify p report, Attack.verify_hwsim p report)
      with
      | Ok (), Ok () -> Ok (`Verified p)
      | Error e, _ -> Error ("replay verification failed: " ^ e)
      | _, Error e -> Error ("hwsim verification failed: " ^ e))

let verdict = function
  | `Verified _ -> "verified (replay paths + hwsim)"
  | `Skipped _ -> "verification skipped (--no-verify)"
  | `Unverified -> "not verified (no ground-truth policy)"

let write_json path text =
  if path = "-" then print_string text
  else begin
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc text);
    Fmt.pr "wrote %s@." path
  end

let analyze_one ~name ?policy machine no_verify =
  let report = Attack.analyze ~name machine in
  match verified policy report no_verify with
  | Error msg -> Error (name ^ ": " ^ msg)
  | Ok v -> Ok (report, v)

let run_all assoc json no_verify =
  let subjects =
    List.filter_map
      (fun e ->
        if e.Cq_policy.Zoo.valid_assoc assoc then
          Some (e.Cq_policy.Zoo.name, e.Cq_policy.Zoo.make assoc)
        else None)
      Cq_policy.Zoo.entries
  in
  let outcomes =
    List.map
      (fun (name, p) ->
        analyze_one ~name ~policy:p (Cq_policy.Policy.to_mealy p) no_verify)
      subjects
  in
  match
    List.find_map (function Error m -> Some m | Ok _ -> None) outcomes
  with
  | Some msg -> fail "%s" msg
  | None ->
      let reports =
        List.filter_map
          (function Ok (r, _) -> Some r | Error _ -> None)
          outcomes
      in
      Fmt.pr "%a@." Attack.pp_table reports;
      Fmt.pr "all sequences %s@."
        (if no_verify then "unverified (--no-verify)"
         else "verified (replay paths + hwsim)");
      Option.iter
        (fun path ->
          write_json path
            ("[\n"
            ^ String.concat ",\n" (List.map Attack.report_json reports)
            ^ "]\n"))
        json;
      `Ok ()

let run_single ~name ?policy machine json no_verify =
  match analyze_one ~name ?policy machine no_verify with
  | Error msg -> fail "%s" msg
  | Ok (report, v) ->
      Fmt.pr "%a@." Attack.pp_report report;
      Fmt.pr "%s@." (verdict v);
      Option.iter (fun path -> write_json path (Attack.report_json report)) json;
      `Ok ()

let main policy assoc all dot snapshot json no_verify =
  let zoo name =
    match Cq_policy.Zoo.make ~name ~assoc with
    | Ok p -> Ok p
    | Error msg -> Error msg
  in
  match (dot, snapshot, all, policy) with
  | Some path, None, false, _ -> (
      match In_channel.with_open_text path In_channel.input_all with
      | exception Sys_error msg -> fail "%s" msg
      | text -> (
          match Attack.machine_of_dot text with
          | Error msg -> fail "%s: %s" path msg
          | Ok machine -> (
              match policy with
              | None ->
                  run_single ~name:(Filename.basename path) machine json
                    no_verify
              | Some name -> (
                  match zoo name with
                  | Error msg -> fail "%s" msg
                  | Ok p ->
                      run_single ~name ~policy:p machine json no_verify))))
  | None, Some path, false, Some name -> (
      (* A snapshot holds the learner's knowledge, not a machine: resume
         the simulated learn to completion, then analyze what it
         produces. *)
      match zoo name with
      | Error msg -> fail "%s" msg
      | Ok p -> (
          match Cq_core.Learn.learn_simulated ~identify:false ~resume:path p with
          | exception Cq_core.Session.Corrupt msg -> fail "%s" msg
          | report ->
              run_single
                ~name:(Printf.sprintf "%s(resumed)" name)
                ~policy:p report.Cq_core.Learn.machine json no_verify))
  | None, Some _, false, None ->
      fail "--snapshot needs --policy (the snapshot's oracle) to resume"
  | None, None, true, None -> run_all assoc json no_verify
  | None, None, false, Some name -> (
      match zoo name with
      | Error msg -> fail "%s" msg
      | Ok p ->
          run_single ~name ~policy:p (Cq_policy.Policy.to_mealy p) json
            no_verify)
  | None, None, false, None ->
      fail "nothing to analyze: give --policy, --all, --dot or --snapshot"
  | _ -> fail "--policy/--all, --dot and --snapshot are mutually exclusive"

let policy_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "policy" ] ~docv:"NAME"
        ~doc:
          "Analyze this zoo policy's automaton (ground truth), or name the \
           oracle when combined with $(b,--snapshot) / the verifier when \
           combined with $(b,--dot).")

let assoc_arg =
  Arg.(value & opt int 4 & info [ "assoc" ] ~doc:"Associativity.")

let all_arg =
  Arg.(
    value & flag
    & info [ "all" ]
        ~doc:"Analyze every zoo policy at $(b,--assoc), ranked by leakage.")

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE"
        ~doc:"Analyze the automaton in this DOT file (as written by polca).")

let snapshot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot" ] ~docv:"FILE"
        ~doc:
          "Resume a simulated learning session from this snapshot and \
           analyze the machine it produces (needs $(b,--policy)).")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Also write the report(s) as JSON to $(docv) ($(b,-) for stdout).")

let no_verify_arg =
  Arg.(
    value & flag
    & info [ "no-verify" ]
        ~doc:
          "Skip the dynamic verification of synthesized sequences against \
           the replay paths and hwsim.")

let cmd =
  let doc =
    "synthesize eviction sets, stealthy sequences and leakage bounds from \
     replacement-policy automata"
  in
  Cmd.v
    (Cmd.info "cq-attack" ~doc)
    Term.(
      ret
        (const main $ policy_arg $ assoc_arg $ all_arg $ dot_arg
       $ snapshot_arg $ json_arg $ no_verify_arg))

let () = exit (Cmd.eval cmd)
