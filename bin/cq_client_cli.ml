(* cq-client: command-line client for cachequeryd.

   One subcommand per protocol verb (roughly); all talk to the daemon's
   Unix socket given with --socket.  Exit codes: 0 on success, 2 on a
   daemon error reply (the error kind is printed), 1 on connection
   failure. *)

open Cmdliner

(* (socket, retries, retry_base): every subcommand takes the connection
   triple so retry behaviour is uniform across verbs. *)
let with_client (socket, retries, retry_base) f =
  let retry =
    if retries <= 0 then None
    else
      Some
        (Cq_service.Client.retry ~attempts:(retries + 1)
           ~policy:(Cq_util.Backoff.policy ~base:retry_base ())
           ())
  in
  match Cq_service.Client.connect_unix ?retry socket with
  | exception Unix.Unix_error (err, _, _) ->
      Fmt.epr "cq-client: cannot connect to %s: %s@." socket
        (Unix.error_message err);
      exit 1
  | c ->
      Fun.protect
        ~finally:(fun () -> Cq_service.Client.close c)
        (fun () ->
          try f c
          with Cq_service.Client.Error { kind; message } ->
            Fmt.epr "cq-client: %s: %s@." kind message;
            exit 2)

let print_json doc = Fmt.pr "%s@." (Cq_service.Json.to_string doc)

let socket_arg =
  let socket =
    Arg.(
      value
      & opt string "cachequeryd.sock"
      & info [ "socket" ] ~docv:"PATH" ~doc:"The daemon's Unix-domain socket.")
  in
  let retries =
    Arg.(
      value
      & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Survive daemon restarts: retry each operation up to $(docv) \
             times across reconnects (with idempotency keys on mutating \
             verbs, so a failover replays instead of double-creating). 0 \
             disables.")
  in
  let retry_base =
    Arg.(
      value
      & opt float 0.05
      & info [ "retry-base" ] ~docv:"SECONDS"
          ~doc:
            "Base delay for the decorrelated-jitter reconnect backoff \
             (only with $(b,--retries)).")
  in
  Term.(const (fun s r b -> (s, r, b)) $ socket $ retries $ retry_base)

let session_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "session" ] ~docv:"ID" ~doc:"Session id.")

let ping_cmd =
  let run socket = with_client socket (fun c -> print_json (Cq_service.Client.ping c)) in
  Cmd.v (Cmd.info "ping" ~doc:"check the daemon is alive") Term.(const run $ socket_arg)

let list_cmd =
  let run socket =
    with_client socket (fun c -> print_json (Cq_service.Client.call c "session.list"))
  in
  Cmd.v (Cmd.info "list" ~doc:"list sessions") Term.(const run $ socket_arg)

let create_cmd =
  let run socket policy assoc cpu level set name budget =
    with_client socket (fun c ->
        let sid =
          match policy with
          | Some policy ->
              Cq_service.Client.create_sim c ?name ?query_budget:budget
                ~policy ~assoc ()
          | None ->
              Cq_service.Client.create_hw c ?name ?query_budget:budget ~cpu
                ~level ~set ()
        in
        Fmt.pr "%d@." sid)
  in
  let policy =
    Arg.(
      value
      & opt (some string) None
      & info [ "simulate" ] ~docv:"POLICY"
          ~doc:"Create a simulated-cache session for this zoo policy.")
  in
  let assoc = Arg.(value & opt int 4 & info [ "assoc" ] ~doc:"Associativity (sim).") in
  let cpu = Arg.(value & opt string "skylake" & info [ "cpu" ] ~doc:"CPU (hw).") in
  let level = Arg.(value & opt string "L1" & info [ "level" ] ~doc:"Cache level (hw).") in
  let set = Arg.(value & opt int 0 & info [ "set" ] ~doc:"Target set (hw).") in
  let name_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "name" ] ~doc:"Session name (also the snapshot file stem).")
  in
  let budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "query-budget" ] ~doc:"Lifetime hardware-query budget.")
  in
  Cmd.v
    (Cmd.info "create" ~doc:"create a learning session")
    Term.(const run $ socket_arg $ policy $ assoc $ cpu $ level $ set $ name_arg $ budget)

let learn_cmd =
  let run socket sid resume kill_after budget wait follow =
    with_client socket (fun c ->
        Cq_service.Client.learn_start c ~resume ?kill_after_queries:kill_after
          ?query_budget:budget sid;
        if follow then
          (* [events] resumes from the last seen seq across reconnects
             when --retries is set. *)
          ignore (Cq_service.Client.events c sid print_json)
        else if wait then print_json (Cq_service.Client.learn_wait c sid)
        else Fmt.pr "queued@.")
  in
  let resume =
    Arg.(value & flag & info [ "resume" ] ~doc:"Resume from the session snapshot.")
  in
  let kill_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "kill-after" ] ~docv:"QUERIES"
          ~doc:"Fault injection: kill the worker after this many queries.")
  in
  let budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "query-budget" ] ~doc:"Budget for this learn only.")
  in
  let wait = Arg.(value & flag & info [ "wait" ] ~doc:"Block until the learn finishes.") in
  let follow =
    Arg.(
      value & flag & info [ "follow" ] ~doc:"Stream progress events until done.")
  in
  Cmd.v
    (Cmd.info "learn" ~doc:"start (and optionally wait for) a learn")
    Term.(
      const run $ socket_arg $ session_arg $ resume $ kill_after $ budget $ wait
      $ follow)

let status_cmd =
  let run socket sid =
    with_client socket (fun c -> print_json (Cq_service.Client.status c sid))
  in
  Cmd.v
    (Cmd.info "status" ~doc:"session status")
    Term.(const run $ socket_arg $ session_arg)

let wait_cmd =
  let run socket sid timeout =
    with_client socket (fun c ->
        print_json (Cq_service.Client.learn_wait c ?timeout_s:timeout sid))
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Give up after this long.")
  in
  Cmd.v
    (Cmd.info "wait" ~doc:"wait for the session's learn to finish")
    Term.(const run $ socket_arg $ session_arg $ timeout)

let query_cmd =
  let run socket sid word mbl =
    with_client socket (fun c ->
        match (word, mbl) with
        | Some word, None ->
            let symbols =
              String.split_on_char ',' word
              |> List.filter (fun s -> s <> "")
              |> List.map int_of_string
            in
            Fmt.pr "%s@."
              (String.concat " " (Cq_service.Client.query_sim c sid symbols))
        | None, Some mbl -> print_json (Cq_service.Client.query_mbl c sid mbl)
        | _ ->
            Fmt.epr "cq-client: pass exactly one of --word or --mbl@.";
            exit 2)
  in
  let word =
    Arg.(
      value
      & opt (some string) None
      & info [ "word" ] ~docv:"W"
          ~doc:"Comma-separated input symbols (sim sessions).")
  in
  let mbl =
    Arg.(
      value
      & opt (some string) None
      & info [ "mbl" ] ~docv:"EXPR" ~doc:"MBL expression (hw sessions).")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"run a membership query")
    Term.(const run $ socket_arg $ session_arg $ word $ mbl)

let replay_cmd =
  let run socket sid spec source =
    with_client socket (fun c ->
        print_json (Cq_service.Client.replay c ?source ~spec sid))
  in
  let spec =
    Arg.(
      required
      & opt (some string) None
      & info [ "spec" ] ~docv:"SPEC"
          ~doc:
            (Printf.sprintf "Workload trace spec: %s."
               Cq_workload.Trace.spec_syntax))
  in
  let source =
    Arg.(
      value
      & opt (some string) None
      & info [ "source" ] ~docv:"SOURCE"
          ~doc:
            "What replays the trace: $(b,auto) (learned machine when one \
             exists, else the policy), $(b,policy), or $(b,learned).")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"replay a workload trace on a sim session (vs Belady-OPT)")
    Term.(const run $ socket_arg $ session_arg $ spec $ source)

let analyze_cmd =
  let run socket sid source =
    with_client socket (fun c ->
        print_json (Cq_service.Client.analyze c ?source sid))
  in
  let source =
    Arg.(
      value
      & opt (some string) None
      & info [ "source" ] ~docv:"SOURCE"
          ~doc:
            "What is analyzed: $(b,auto) (learned machine when one exists, \
             else the policy), $(b,policy), or $(b,learned).")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "static security analysis of a sim session's automaton: eviction \
          sets, stealthy sequences, leakage (verified server-side)")
    Term.(const run $ socket_arg $ session_arg $ source)

let result_cmd =
  let run socket sid dot =
    with_client socket (fun c ->
        print_json (Cq_service.Client.result c ~dot sid))
  in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Include the DOT graph.") in
  Cmd.v
    (Cmd.info "result" ~doc:"fetch the learned automaton's digest (and DOT)")
    Term.(const run $ socket_arg $ session_arg $ dot)

let cancel_cmd =
  let run socket sid =
    with_client socket (fun c ->
        Cq_service.Client.learn_cancel c sid;
        Fmt.pr "cancelled@.")
  in
  Cmd.v
    (Cmd.info "cancel" ~doc:"cancel the session's learn")
    Term.(const run $ socket_arg $ session_arg)

let health_cmd =
  let run socket =
    with_client socket (fun c -> print_json (Cq_service.Client.health c))
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "daemon health: breaker state, gate depth, inflight learns, \
          snapshot-disk headroom, armed fault sites")
    Term.(const run $ socket_arg)

let stats_cmd =
  let run socket =
    with_client socket (fun c -> print_json (Cq_service.Client.call c "stats"))
  in
  Cmd.v (Cmd.info "stats" ~doc:"daemon statistics") Term.(const run $ socket_arg)

let shutdown_cmd =
  let run socket =
    with_client socket (fun c ->
        Cq_service.Client.shutdown c;
        Fmt.pr "stopping@.")
  in
  Cmd.v
    (Cmd.info "shutdown" ~doc:"gracefully stop the daemon")
    Term.(const run $ socket_arg)

let cmd =
  let doc = "client for the cachequeryd learning service" in
  Cmd.group (Cmd.info "cq-client" ~doc)
    [
      ping_cmd;
      list_cmd;
      create_cmd;
      learn_cmd;
      status_cmd;
      wait_cmd;
      query_cmd;
      replay_cmd;
      analyze_cmd;
      result_cmd;
      cancel_cmd;
      health_cmd;
      stats_cmd;
      shutdown_cmd;
    ]

let () = exit (Cmd.eval cmd)
