(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's experiment index), printing our measurements
   side by side with the paper's published numbers.

   Usage:
     dune exec bench/main.exe                  -- all experiments, default caps
     dune exec bench/main.exe -- table2        -- one experiment
     dune exec bench/main.exe -- table2 --full -- uncapped (can run for hours)
     dune exec bench/main.exe -- micro         -- bechamel micro-benchmarks

   Absolute times are not comparable with the paper's (different host,
   language, and a simulated CPU instead of silicon); the *shape* — state
   counts, which policies are learnable/expressible, growth with
   associativity, who is slow and who is fast — is. *)

let line = String.make 78 '-'

let header title =
  Printf.printf "\n%s\n%s\n%s\n%!" line title line

(* ----------------------------------------------------------------------- *)
(* Table 2: learning from software-simulated caches                         *)
(* ----------------------------------------------------------------------- *)

let table2 ~full () =
  header
    "Table 2: learning policies from software-simulated caches (Polca + L*, \
     Wp-method depth 1)";
  Printf.printf "%-10s %5s | %8s %16s | %8s %14s\n%!" "Policy" "Assoc"
    "states" "time" "paper" "paper time";
  let budget = if full then 1100 else 300 in
  List.iter
    (fun (name, assoc, paper_states, paper_time) ->
      if paper_states > budget then
        Printf.printf "%-10s %5d | %8s %16s | %8d %14s  (skipped: > %d states%s)\n%!"
          name assoc "-" "-" paper_states paper_time budget
          (if full then "" else ", use --full")
      else
        let policy = Cq_policy.Zoo.make_exn ~name ~assoc in
        let report = Cq_core.Learn.learn_simulated ~identify:false policy in
        let ok = if report.Cq_core.Learn.states = paper_states then "" else "  <-- MISMATCH" in
        Printf.printf "%-10s %5d | %8d %16s | %8d %14s%s\n%!" name assoc
          report.Cq_core.Learn.states
          (Cq_util.Clock.to_string report.Cq_core.Learn.seconds)
          paper_states paper_time ok)
    Paper_data.table2

(* ----------------------------------------------------------------------- *)
(* Table 3: processor specifications (static; printed for reference)        *)
(* ----------------------------------------------------------------------- *)

let table3 () =
  header "Table 3: simulated processors' specifications";
  List.iter
    (fun model -> Fmt.pr "%a@." Cq_hwsim.Cpu_model.pp_specs model)
    Cq_hwsim.Cpu_model.all

(* ----------------------------------------------------------------------- *)
(* Table 4: learning from (simulated) hardware                              *)
(* ----------------------------------------------------------------------- *)

type t4_plan = {
  model : Cq_hwsim.Cpu_model.t;
  level : Cq_hwsim.Cpu_model.level;
  cat_ways : int option;
  set : int;
  slice : int;
  max_states : int;
  paper : Paper_data.t4_row;
  expensive : bool; (* skipped unless --full *)
}

let t4_plans =
  let p cpu level =
    List.find
      (fun (r : Paper_data.t4_row) -> r.Paper_data.cpu = cpu && r.Paper_data.level = level)
      Paper_data.table4
  in
  [
    { model = Cq_hwsim.Cpu_model.haswell; level = Cq_hwsim.Cpu_model.L1;
      cat_ways = None; set = 0; slice = 0; max_states = 100_000;
      paper = p "i7-4790" "L1"; expensive = false };
    { model = Cq_hwsim.Cpu_model.haswell; level = Cq_hwsim.Cpu_model.L2;
      cat_ways = None; set = 0; slice = 0; max_states = 100_000;
      paper = p "i7-4790" "L2"; expensive = true };
    (* Haswell L3: no CAT support; the 768-831 leader group behaves
       non-deterministically.  We attempt the noisy leader (fails at reset
       discovery, as in the paper); the deterministic 512-575 group at full
       associativity 16 exceeds any reasonable state budget. *)
    { model = Cq_hwsim.Cpu_model.haswell; level = Cq_hwsim.Cpu_model.L3;
      cat_ways = None; set = 768; slice = 0; max_states = 64;
      paper = p "i7-4790" "L3"; expensive = false };
    { model = Cq_hwsim.Cpu_model.skylake; level = Cq_hwsim.Cpu_model.L1;
      cat_ways = None; set = 0; slice = 0; max_states = 100_000;
      paper = p "i5-6500" "L1"; expensive = false };
    { model = Cq_hwsim.Cpu_model.skylake; level = Cq_hwsim.Cpu_model.L2;
      cat_ways = None; set = 0; slice = 0; max_states = 100_000;
      paper = p "i5-6500" "L2"; expensive = true };
    { model = Cq_hwsim.Cpu_model.skylake; level = Cq_hwsim.Cpu_model.L3;
      cat_ways = Some 4; set = 0; slice = 0; max_states = 100_000;
      paper = p "i5-6500" "L3"; expensive = true };
    { model = Cq_hwsim.Cpu_model.kaby_lake; level = Cq_hwsim.Cpu_model.L1;
      cat_ways = None; set = 0; slice = 0; max_states = 100_000;
      paper = p "i7-8550U" "L1"; expensive = false };
    { model = Cq_hwsim.Cpu_model.kaby_lake; level = Cq_hwsim.Cpu_model.L2;
      cat_ways = None; set = 0; slice = 0; max_states = 100_000;
      paper = p "i7-8550U" "L2"; expensive = true };
    { model = Cq_hwsim.Cpu_model.kaby_lake; level = Cq_hwsim.Cpu_model.L3;
      cat_ways = Some 4; set = 0; slice = 0; max_states = 100_000;
      paper = p "i7-8550U" "L3"; expensive = true };
  ]

let table4 ~full () =
  header
    "Table 4: learning policies from (simulated) hardware caches via \
     CacheQuery";
  Printf.printf "%-9s %-3s %5s | %-46s %9s | %6s %-5s %-10s\n%!" "CPU" "Lvl"
    "assoc" "ours" "time" "paper" "pol." "paper reset";
  List.iter
    (fun plan ->
      let paper_states =
        match plan.paper.Paper_data.states with
        | Some n -> string_of_int n
        | None -> "-"
      in
      if plan.expensive && not full then
        Printf.printf "%-9s %-3s %5d | %-46s %9s | %6s %-5s %-10s\n%!"
          plan.paper.Paper_data.cpu plan.paper.Paper_data.level
          plan.paper.Paper_data.assoc "(skipped: expensive, use --full)" "-"
          paper_states plan.paper.Paper_data.policy plan.paper.Paper_data.reset
      else begin
        let machine =
          Cq_hwsim.Machine.create ~noise:Cq_hwsim.Machine.quiet_noise plan.model
        in
        let t0 = Cq_util.Clock.mono () in
        let run =
          Cq_core.Hardware.learn_set machine plan.level ?cat_ways:plan.cat_ways
            ~set:plan.set ~slice:plan.slice ~max_states:plan.max_states
            ~check_hits:false
        in
        let dt = Cq_util.Clock.mono () -. t0 in
        let ours =
          match run.Cq_core.Hardware.outcome with
          | Cq_core.Hardware.Learned { report; reset; _ } ->
              Printf.sprintf "%d states, %s, reset %s" report.Cq_core.Learn.states
                (match report.Cq_core.Learn.identified with
                | [] -> "undocumented"
                | l -> String.concat "/" l)
                (Cq_cachequery.Frontend.reset_to_string reset)
          | Cq_core.Hardware.Partial { failure; _ } ->
              Fmt.str "- (partial: %a)" Cq_core.Learn.pp_failure failure
          | Cq_core.Hardware.Failed { reason; _ } ->
              Printf.sprintf "- (%s)" reason
        in
        Printf.printf "%-9s %-3s %5d | %-46s %8.1fs | %6s %-5s %-10s\n%!"
          plan.paper.Paper_data.cpu plan.paper.Paper_data.level
          run.Cq_core.Hardware.assoc ours dt paper_states
          plan.paper.Paper_data.policy plan.paper.Paper_data.reset
      end)
    t4_plans

(* ----------------------------------------------------------------------- *)
(* Table 5: synthesizing explanations                                       *)
(* ----------------------------------------------------------------------- *)

let table5 ~full () =
  header "Table 5: synthesizing explanations for policies (associativity 4)";
  Printf.printf "%-10s %6s | %-9s %16s | %-9s %12s\n%!" "Policy" "states"
    "template" "time" "paper" "paper time";
  let deadline = if full then 3600.0 else 90.0 in
  List.iter
    (fun (name, paper_states, paper_template, paper_time) ->
      let policy = Cq_policy.Zoo.make_exn ~name ~assoc:4 in
      let machine = Cq_policy.Policy.to_mealy policy in
      let r = Cq_synth.Search.synthesize ~deadline machine in
      let template, time_str =
        match r.Cq_synth.Search.outcome with
        | Cq_synth.Search.Found _ ->
            (r.Cq_synth.Search.template, Cq_util.Clock.to_string r.Cq_synth.Search.seconds)
        | Cq_synth.Search.Not_expressible -> ("-", "(not expressible)")
        | Cq_synth.Search.Timeout ->
            ("-", Printf.sprintf "(timeout %.0fs)" deadline)
      in
      Printf.printf "%-10s %6d | %-9s %16s | %-9s %12s\n%!" name paper_states
        template time_str
        (Option.value paper_template ~default:"-")
        paper_time)
    Paper_data.table5

(* ----------------------------------------------------------------------- *)
(* Figure 5 / Appendix C: the synthesized New1 and New2 programs            *)
(* ----------------------------------------------------------------------- *)

let figure5 () =
  header "Figure 5 / Appendix C: synthesized programs for New1 and New2";
  List.iter
    (fun name ->
      let policy = Cq_policy.Zoo.make_exn ~name ~assoc:4 in
      let machine = Cq_policy.Policy.to_mealy policy in
      let r = Cq_synth.Search.synthesize ~deadline:120.0 machine in
      match r.Cq_synth.Search.outcome with
      | Cq_synth.Search.Found prog ->
          Printf.printf "\n--- %s (%s template, %s) ---\n%s\n%!" name
            r.Cq_synth.Search.template
            (Cq_util.Clock.to_string r.Cq_synth.Search.seconds)
            (Cq_synth.Rules.to_string prog)
      | _ -> Printf.printf "\n--- %s: synthesis failed ---\n%!" name)
    [ "New1"; "New2" ]

(* ----------------------------------------------------------------------- *)
(* Figure 1: the toy pipeline                                                *)
(* ----------------------------------------------------------------------- *)

let figure1 () =
  header "Figure 1: the end-to-end toy pipeline (2-way LRU)";
  let policy = Cq_policy.Lru.make 2 in
  let oracle = Cq_cache.Oracle.of_policy policy in
  let show blocks =
    let results = oracle.Cq_cache.Oracle.query blocks in
    Printf.printf "  %-10s -> %s\n%!"
      (String.concat " " (List.map Cq_cache.Block.to_string blocks))
      (String.concat " "
         (List.map
            (fun r -> if Cq_cache.Cache_set.result_is_hit r then "Hit" else "Miss")
            results))
  in
  Printf.printf "Figure 1b/1c traces:\n";
  let b = Cq_cache.Block.of_index in
  show [ b 0; b 1; b 2; b 0 ];
  show [ b 0; b 1; b 2; b 1 ];
  let report = Cq_core.Learn.learn_simulated policy in
  Printf.printf
    "Figure 1a: learned a %d-state machine (identified as: %s).\n%!"
    report.Cq_core.Learn.states
    (String.concat ", " report.Cq_core.Learn.identified)

(* ----------------------------------------------------------------------- *)
(* §7.2: the cost of learning from hardware                                  *)
(* ----------------------------------------------------------------------- *)

let cost () =
  header "Section 7.2: the cost of learning from hardware";
  let plru8 = Cq_policy.Zoo.make_exn ~name:"PLRU" ~assoc:8 in
  let sim_report = Cq_core.Learn.learn_simulated ~identify:false plru8 in
  Printf.printf
    "PLRU-8 from the software-simulated cache:        %8.2f s (paper: %.2f s)\n%!"
    sim_report.Cq_core.Learn.seconds Paper_data.cost_sim_seconds;
  (* ... vs. via CacheQuery with a warm query cache: learn once to fill the
     memo, then learn again with every MBL query answered from it. *)
  let machine =
    Cq_hwsim.Machine.create ~noise:Cq_hwsim.Machine.quiet_noise
      Cq_hwsim.Cpu_model.skylake
  in
  let backend =
    Cq_cachequery.Backend.create machine
      { Cq_cachequery.Backend.level = Cq_hwsim.Cpu_model.L1; slice = 0; set = 0 }
  in
  ignore (Cq_cachequery.Backend.calibrate backend);
  let frontend = Cq_cachequery.Frontend.create backend in
  let oracle = Cq_cachequery.Frontend.oracle frontend in
  let learn () =
    (* Sequential engine: this experiment measures the frontend's query
       memo (cold vs warm), which session-mode execution bypasses. *)
    Cq_core.Learn.learn_from_cache ~engine:Cq_core.Learn.Sequential
      ~memoize:false ~identify:false ~check_hits:false oracle
  in
  let cold = learn () in
  let warm = learn () in
  Printf.printf
    "PLRU-8 via CacheQuery (cold run):                %8.2f s\n%!"
    cold.Cq_core.Learn.seconds;
  Printf.printf
    "PLRU-8 via CacheQuery (warm LevelDB-style memo): %8.2f s (paper: %.0f s)\n%!"
    warm.Cq_core.Learn.seconds Paper_data.cost_warm_cache_seconds;
  Printf.printf
    "abstraction overhead factor (warm / simulated):  %7.1fx (paper: %.0fx)\n%!"
    (warm.Cq_core.Learn.seconds /. sim_report.Cq_core.Learn.seconds)
    Paper_data.cost_overhead_factor;
  Printf.printf "\nSingle MBL query '@ M _?' (mean of 100 executions):\n%!";
  List.iter
    (fun (level, paper_ms) ->
      let lvl =
        match level with
        | "L1" -> Cq_hwsim.Cpu_model.L1
        | "L2" -> Cq_hwsim.Cpu_model.L2
        | _ -> Cq_hwsim.Cpu_model.L3
      in
      let machine =
        Cq_hwsim.Machine.create ~noise:Cq_hwsim.Machine.quiet_noise
          Cq_hwsim.Cpu_model.skylake
      in
      let backend =
        Cq_cachequery.Backend.create machine
          { Cq_cachequery.Backend.level = lvl; slice = 0; set = 0 }
      in
      ignore (Cq_cachequery.Backend.calibrate backend);
      let fe = Cq_cachequery.Frontend.create backend in
      Cq_cachequery.Frontend.set_memo fe false;
      let t0 = Cq_util.Clock.mono () in
      for _ = 1 to 100 do
        ignore (Cq_cachequery.Frontend.run_mbl fe "@ M _?")
      done;
      let ms = (Cq_util.Clock.mono () -. t0) /. 100.0 *. 1000.0 in
      Printf.printf "  %s: %7.2f ms/query (paper, on silicon: %.0f ms)\n%!" level
        ms paper_ms)
    Paper_data.cost_query_ms

(* ----------------------------------------------------------------------- *)
(* Appendix B: leader sets                                                   *)
(* ----------------------------------------------------------------------- *)

let leaders ~full () =
  header "Appendix B: adaptive policies and leader-set detection";
  let scan_cpu model n_sets =
    Printf.printf "\n%s (%s), slice 0, first %d sets:\n%!"
      model.Cq_hwsim.Cpu_model.name model.Cq_hwsim.Cpu_model.codename n_sets;
    let machine =
      Cq_hwsim.Machine.create ~noise:Cq_hwsim.Machine.quiet_noise model
    in
    if model.Cq_hwsim.Cpu_model.supports_cat then
      Cq_hwsim.Machine.set_cat_ways machine 4;
    let sets = List.init n_sets (fun i -> i) in
    let results = Cq_core.Leader_sets.scan machine sets in
    List.iter
      (fun r ->
        if
          r.Cq_core.Leader_sets.classification
          <> Cq_core.Leader_sets.Follower
        then
          Printf.printf "  set %4d: %s\n%!" r.Cq_core.Leader_sets.set
            (Cq_core.Leader_sets.classification_to_string
               r.Cq_core.Leader_sets.classification))
      results;
    let detected, expected = Cq_core.Leader_sets.check_against_model model results in
    Printf.printf
      "  vulnerable leaders detected [%s]; index formula predicts [%s] => %s\n%!"
      (String.concat "," (List.map string_of_int detected))
      (String.concat "," (List.map string_of_int expected))
      (if detected = expected then "MATCH" else "MISMATCH")
  in
  scan_cpu Cq_hwsim.Cpu_model.skylake (if full then 256 else 72);
  if full then scan_cpu Cq_hwsim.Cpu_model.kaby_lake 256
  else
    Printf.printf
      "\ni7-8550U (Kaby Lake): same selection formula as Skylake (use --full \
       to rescan).\n%!";
  (* Haswell: leaders live in slice 0, sets 512-575 / 768-831. *)
  let model = Cq_hwsim.Cpu_model.haswell in
  Printf.printf "\n%s (%s), slice 0, sampling sets 504..584 and 760..840:\n%!"
    model.Cq_hwsim.Cpu_model.name model.Cq_hwsim.Cpu_model.codename;
  let machine = Cq_hwsim.Machine.create ~noise:Cq_hwsim.Machine.quiet_noise model in
  let sample =
    List.init 11 (fun i -> 504 + (i * 8)) @ List.init 11 (fun i -> 760 + (i * 8))
  in
  let results = Cq_core.Leader_sets.scan machine sample in
  List.iter
    (fun r ->
      if r.Cq_core.Leader_sets.classification <> Cq_core.Leader_sets.Follower
      then
        Printf.printf "  set %4d: %s\n%!" r.Cq_core.Leader_sets.set
          (Cq_core.Leader_sets.classification_to_string
             r.Cq_core.Leader_sets.classification))
    results;
  Printf.printf
    "  (the 768-831 group is thrash-resistant and non-deterministic, as in \
     the paper)\n%!"

(* ----------------------------------------------------------------------- *)
(* Ablations: design choices DESIGN.md calls out                             *)
(* ----------------------------------------------------------------------- *)

let ablations () =
  header "Ablations: W vs Wp suites, hit probes, fingerprint vs learning";
  (* (a) The paper uses the Wp-method for its smaller suites (§3.4):
     compare total suite symbols on the evaluation policies. *)
  Printf.printf "\n(a) conformance suite size (total input symbols, depth 1):\n%!";
  Printf.printf "    %-10s %10s %10s %8s\n%!" "policy" "W" "Wp" "ratio";
  List.iter
    (fun (name, assoc) ->
      let h =
        Cq_automata.Mealy.minimize
          (Cq_policy.Policy.to_mealy (Cq_policy.Zoo.make_exn ~name ~assoc))
      in
      let w = Cq_learner.Equivalence.suite_symbols (Cq_learner.Equivalence.w_method_suite ~depth:1 h) in
      let wp = Cq_learner.Equivalence.suite_symbols (Cq_learner.Equivalence.wp_method_suite ~depth:1 h) in
      Printf.printf "    %-10s %10d %10d %8.2fx\n%!" name w wp
        (float_of_int w /. float_of_int (max 1 wp)))
    [ ("LRU", 4); ("PLRU", 8); ("MRU", 6); ("SRRIP-HP", 4); ("New1", 4); ("New2", 4) ];
  (* (b) Algorithm 1 probes accesses whose outcome is known (hit checks):
     cost and result with and without. *)
  Printf.printf "\n(b) Polca hit probes (New1-4 from a simulated cache):\n%!";
  List.iter
    (fun check_hits ->
      let r =
        Cq_core.Learn.learn_simulated ~identify:false ~check_hits
          (Cq_policy.Zoo.make_exn ~name:"New1" ~assoc:4)
      in
      Printf.printf "    check_hits=%-5b %d states, %d cache queries, %s\n%!"
        check_hits r.Cq_core.Learn.states r.Cq_core.Learn.cache_queries
        (Cq_util.Clock.to_string r.Cq_core.Learn.seconds))
    [ true; false ];
  (* (c) nanoBench-style fingerprinting vs. full learning (the trade-off
     the paper's related work discusses): random testing works where the
     reset fully resets the policy state (L1) and fails where it does not
     (Skylake L2's age bits survive Flush+Refill); learning handles both. *)
  Printf.printf "\n(c) fingerprinting vs learning (simulated Skylake):\n%!";
  let fingerprint level set =
    let machine =
      Cq_hwsim.Machine.create ~noise:Cq_hwsim.Machine.quiet_noise
        Cq_hwsim.Cpu_model.skylake
    in
    let be =
      Cq_cachequery.Backend.create machine
        { Cq_cachequery.Backend.level; slice = 0; set }
    in
    ignore (Cq_cachequery.Backend.calibrate be);
    let fe = Cq_cachequery.Frontend.create be in
    Cq_util.Clock.time (fun () ->
        Cq_core.Fingerprint.identify ~sequences:250
          (Cq_cachequery.Frontend.oracle fe))
  in
  let v1, dt1 = fingerprint Cq_hwsim.Cpu_model.L1 5 in
  Printf.printf "    L1: survivors [%s] in %.2f s (%d sequences)\n%!"
    (String.concat "; " v1.Cq_core.Fingerprint.survivors)
    dt1 v1.Cq_core.Fingerprint.sequences;
  let v2, _ = fingerprint Cq_hwsim.Cpu_model.L2 5 in
  Printf.printf
    "    L2: survivors [%s] -- random testing cannot pin the post-reset \
     control state (stale age bits) and eliminates every candidate, while \
     learning recovers New1: the generality gap the paper describes\n%!"
    (String.concat "; " v2.Cq_core.Fingerprint.survivors);
  (* (d) Optimal eviction strategies computed from the learned models (the
     paper's security motivation, §10). *)
  Printf.printf "\n(d) shortest eviction strategies (line 0, associativity 4):\n%!";
  List.iter
    (fun name ->
      let policy = Cq_policy.Zoo.make_exn ~name ~assoc:4 in
      let m = Cq_policy.Policy.to_mealy policy in
      match Cq_core.Eviction.shortest ~target:0 m (Cq_automata.Mealy.init m) with
      | Some s ->
          Printf.printf "    %-10s %s\n%!" name
            (Fmt.str "%a" (Cq_core.Eviction.pp_strategy ~assoc:4) s)
      | None -> Printf.printf "    %-10s (not evictable)\n%!" name)
    [ "LRU"; "FIFO"; "PLRU"; "MRU"; "LIP"; "SRRIP-HP"; "New1"; "New2" ]

(* ----------------------------------------------------------------------- *)
(* Query-engine benchmark: sequential vs batched vs parallel                 *)
(* ----------------------------------------------------------------------- *)

(* Compare the three query engines on the simulated-cache pipeline: the
   sequential baseline (reset-and-replay, short-circuit findEvicted), the
   prefix-sharing batched engine, and batched + pooled conformance testing.
   All three must learn the same automaton; the speedups land in
   BENCH_engine.json for machine consumption. *)
let engine () =
  header
    "Engine: sequential vs batched vs parallel query engines (Polca + L*, \
     Wp-method depth 1)";
  let domains = max 2 (Domain.recommended_domain_count ()) in
  let configs =
    [ ("LRU", 4); ("PLRU", 4); ("FIFO", 8); ("PLRU", 8); ("FIFO", 16) ]
  in
  Printf.printf "%-8s %5s | %9s | %9s %7s | %9s %7s | %6s %5s\n%!" "Policy"
    "assoc" "seq" "batched" "speedup" "par" "speedup" "saved%" "agree";
  (* Observability overhead gate: the same learning run with tracing
     enabled must issue exactly the same queries and block accesses — the
     span instrumentation must never perturb the pipeline.  The enabled
     run's event count is folded into BENCH_engine.json (the trace itself
     is reproducible on demand via polca --trace; a second artifact file
     only drifted out of sync).  Runs first so the counter only reflects
     this probe, not the whole benchmark. *)
  let overhead_identical, trace_events =
    let probe = Cq_policy.Zoo.make_exn ~name:"PLRU" ~assoc:4 in
    let go () =
      Cq_core.Learn.learn_simulated ~identify:false
        ~engine:Cq_core.Learn.Batched probe
    in
    let untraced = go () in
    Cq_util.Trace.enable ();
    let traced = go () in
    let trace_events = Cq_util.Trace.recorded () in
    Cq_util.Trace.disable ();
    Cq_util.Trace.clear ();
    let same =
      untraced.Cq_core.Learn.member_queries
      = traced.Cq_core.Learn.member_queries
      && untraced.Cq_core.Learn.cache_queries
         = traced.Cq_core.Learn.cache_queries
      && untraced.Cq_core.Learn.cache_accesses
         = traced.Cq_core.Learn.cache_accesses
      && untraced.Cq_core.Learn.timed_loads = traced.Cq_core.Learn.timed_loads
    in
    Printf.printf
      "tracing on/off: %d/%d queries, %d/%d accesses -> %s (%d trace \
       events)\n\
       %!"
      traced.Cq_core.Learn.member_queries untraced.Cq_core.Learn.member_queries
      traced.Cq_core.Learn.cache_accesses
      untraced.Cq_core.Learn.cache_accesses
      (if same then "identical" else "MISMATCH <-- instrumentation leak")
      trace_events;
    (same, trace_events)
  in
  let rows =
    List.map
      (fun (name, assoc) ->
        let policy = Cq_policy.Zoo.make_exn ~name ~assoc in
        let run engine =
          Cq_core.Learn.learn_simulated ~identify:false ~engine policy
        in
        let seq = run Cq_core.Learn.Sequential in
        let bat = run Cq_core.Learn.Batched in
        let par = run (Cq_core.Learn.Parallel { domains }) in
        let states (r : Cq_core.Learn.report) = r.Cq_core.Learn.states in
        let machine (r : Cq_core.Learn.report) = r.Cq_core.Learn.machine in
        let seconds (r : Cq_core.Learn.report) = r.Cq_core.Learn.seconds in
        let agree =
          states seq = states bat
          && states seq = states par
          && Cq_automata.Mealy.equivalent (machine seq) (machine bat)
          && Cq_automata.Mealy.equivalent (machine seq) (machine par)
        in
        let speedup r = seconds seq /. Float.max 1e-9 (seconds r) in
        let saved_pct =
          100.0
          *. float_of_int bat.Cq_core.Learn.accesses_saved
          /. float_of_int (max 1 bat.Cq_core.Learn.cache_accesses)
        in
        Printf.printf
          "%-8s %5d | %8.3fs | %8.3fs %6.2fx | %8.3fs %6.2fx | %5.1f%% %5s\n%!"
          name assoc (seconds seq) (seconds bat) (speedup bat) (seconds par)
          (speedup par) saved_pct
          (if agree then "yes" else "NO <-- MISMATCH");
        (name, assoc, seq, bat, par, agree))
      configs
  in
  (* Machine-readable output (no JSON library in the toolchain: the format
     is simple enough to emit by hand).  Rendered into a buffer and written
     atomically, so a crash mid-bench never leaves a truncated file behind
     for the next run to choke on. *)
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out
    "{\n  \"domains\": %d,\n  \"tracing_overhead_identical\": %b,\n\
    \  \"tracing_probe_events\": %d,\n"
    domains overhead_identical trace_events;
  (* The batched run's full metrics registry — histograms included — so
     the bench JSON carries the same observability block the learning
     reports do. *)
  (match rows with
  | (_, _, _, bat, _, _) :: _ ->
      out "  \"metrics\": %s,\n"
        (String.trim (Cq_util.Metrics.to_json bat.Cq_core.Learn.metrics))
  | [] -> ());
  out "  \"results\": [\n";
  List.iteri
    (fun i (name, assoc, seq, bat, par, agree) ->
      let seconds (r : Cq_core.Learn.report) = r.Cq_core.Learn.seconds in
      let engine_obj (r : Cq_core.Learn.report) =
        Printf.sprintf
          "{ \"seconds\": %.6f, \"speedup\": %.3f, \"cache_queries\": %d, \
           \"cache_accesses\": %d, \"cache_batches\": %d, \
           \"accesses_saved\": %d }"
          (seconds r)
          (seconds seq /. Float.max 1e-9 (seconds r))
          r.Cq_core.Learn.cache_queries r.Cq_core.Learn.cache_accesses
          r.Cq_core.Learn.cache_batches r.Cq_core.Learn.accesses_saved
      in
      out
        "    { \"policy\": %S, \"assoc\": %d, \"states\": %d, \
         \"automata_identical\": %b,\n\
        \      \"sequential\": %s,\n\
        \      \"batched\": %s,\n\
        \      \"parallel\": %s }%s\n"
        name assoc seq.Cq_core.Learn.states agree (engine_obj seq)
        (engine_obj bat) (engine_obj par)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ]\n}\n";
  Cq_util.Atomic_file.write ~path:"BENCH_engine.json" (Buffer.contents buf);
  Printf.printf "\n(wrote BENCH_engine.json; %d worker domains for parallel)\n%!"
    domains;
  if not overhead_identical then
    failwith "engine bench: tracing changed the pipeline's query counts"

(* ----------------------------------------------------------------------- *)
(* Noise: learning under measurement noise                                   *)
(* ----------------------------------------------------------------------- *)

(* Learn real targets under injected measurement noise at several voting
   settings.  Correctness: the learned automaton must be identical to the
   quiet run's.  Cost: timed loads — adaptive voting must beat fixed
   repetitions by only re-measuring disputed accesses.  Results land in
   BENCH_noise.json so the robustness trajectory is tracked across PRs. *)
let noise ~full () =
  header
    "Noise: learning under measurement noise (adaptive voting, bounded \
     retry, drift recalibration)";
  let module M = Cq_hwsim.Machine in
  let module FE = Cq_cachequery.Frontend in
  let targets =
    [ (Cq_hwsim.Cpu_model.haswell, Cq_hwsim.Cpu_model.L1, "i7-4790", "L1") ]
    @
    if full then
      [ (Cq_hwsim.Cpu_model.skylake, Cq_hwsim.Cpu_model.L2, "i5-6500", "L2") ]
    else []
  in
  let settings =
    [
      ("fixed reps=1", "default", M.default_noise, FE.Fixed 1, 0);
      ("fixed reps=5", "default", M.default_noise, FE.Fixed 5, 3);
      ("adaptive <=5", "default", M.default_noise, FE.Adaptive { max = 5 }, 3);
      ("adaptive <=3", "default", M.default_noise, FE.Adaptive { max = 3 }, 3);
      ("adaptive <=5", "burst", M.burst_noise, FE.Adaptive { max = 5 }, 3);
      ("adaptive <=5", "drift", M.drift_noise, FE.Adaptive { max = 5 }, 3);
    ]
  in
  let all_rows =
    List.map
      (fun (model, level, cpu, level_name) ->
        Printf.printf "\n%s %s:\n%!" cpu level_name;
        Printf.printf "%-14s %-8s | %6s %5s | %10s %9s %6s %4s %6s | %8s\n%!"
          "voting" "noise" "states" "same" "timedloads" "voteruns" "flips"
          "rcal" "retry" "time";
        let quiet_machine = M.create ~noise:M.quiet_noise model in
        let t0 = Cq_util.Clock.mono () in
        let quiet =
          Cq_core.Hardware.learn_set ~check_hits:false quiet_machine level
        in
        let quiet_dt = Cq_util.Clock.mono () -. t0 in
        let quiet_report =
          match quiet.Cq_core.Hardware.outcome with
          | Cq_core.Hardware.Learned { report; _ } -> report
          | Cq_core.Hardware.Partial { failure; _ } ->
              failwith
                (Fmt.str "noise bench: quiet run partial: %a"
                   Cq_core.Learn.pp_failure failure)
          | Cq_core.Hardware.Failed { reason; _ } ->
              failwith ("noise bench: quiet run failed: " ^ reason)
        in
        Printf.printf
          "%-14s %-8s | %6d %5s | %10d %9s %6s %4s %6s | %7.1fs\n%!" "(none)"
          "quiet" quiet_report.Cq_core.Learn.states "-"
          quiet.Cq_core.Hardware.timed_loads "-" "-" "-" "-" quiet_dt;
        let rows =
          List.map
            (fun (vlabel, nlabel, noise_cfg, voting, retries) ->
              let machine = M.create ~noise:noise_cfg model in
              let t0 = Cq_util.Clock.mono () in
              let run =
                Cq_core.Hardware.learn_set ~check_hits:false ~voting ~retries
                  machine level
              in
              let dt = Cq_util.Clock.mono () -. t0 in
              let row =
                match run.Cq_core.Hardware.outcome with
                | Cq_core.Hardware.Learned { report; _ } ->
                    let identical =
                      Cq_automata.Mealy.equivalent
                        report.Cq_core.Learn.machine
                        quiet_report.Cq_core.Learn.machine
                    in
                    Printf.printf
                      "%-14s %-8s | %6d %5s | %10d %9d %6d %4d %6d | %7.1fs%s\n%!"
                      vlabel nlabel report.Cq_core.Learn.states
                      (if identical then "yes" else "NO")
                      run.Cq_core.Hardware.timed_loads
                      report.Cq_core.Learn.vote_runs
                      report.Cq_core.Learn.transient_flips
                      run.Cq_core.Hardware.recalibrations
                      report.Cq_core.Learn.retry_attempts dt
                      (if identical then "" else "  <-- MISMATCH");
                    `Learned (report, identical)
                | Cq_core.Hardware.Partial { failure; _ } ->
                    let reason =
                      Fmt.str "partial: %a" Cq_core.Learn.pp_failure failure
                    in
                    Printf.printf "%-14s %-8s | %6s %5s | %10d %9s %6s %4d %6s | %7.1fs  (%s)\n%!"
                      vlabel nlabel "-" "-" run.Cq_core.Hardware.timed_loads "-"
                      "-" run.Cq_core.Hardware.recalibrations "-" dt
                      (String.sub reason 0 (min 60 (String.length reason)));
                    `Failed reason
                | Cq_core.Hardware.Failed { reason; _ } ->
                    Printf.printf "%-14s %-8s | %6s %5s | %10d %9s %6s %4d %6s | %7.1fs  (failed: %s)\n%!"
                      vlabel nlabel "-" "-" run.Cq_core.Hardware.timed_loads "-"
                      "-" run.Cq_core.Hardware.recalibrations "-" dt
                      (String.sub reason 0 (min 60 (String.length reason)));
                    `Failed reason
              in
              (vlabel, nlabel, voting, retries, run, dt, row))
            settings
        in
        (cpu, level_name, quiet, quiet_report, quiet_dt, rows))
      targets
  in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n  \"targets\": [\n";
  List.iteri
    (fun ti (cpu, level_name, quiet, quiet_report, quiet_dt, rows) ->
      out
        "    { \"cpu\": %S, \"level\": %S,\n\
        \      \"quiet\": { \"states\": %d, \"timed_loads\": %d, \
         \"seconds\": %.3f },\n\
        \      \"runs\": [\n"
        cpu level_name quiet_report.Cq_core.Learn.states
        quiet.Cq_core.Hardware.timed_loads quiet_dt;
      List.iteri
        (fun i (vlabel, nlabel, _voting, retries, run, dt, row) ->
          let common =
            Printf.sprintf
              "\"voting\": %S, \"noise\": %S, \"retries\": %d, \
               \"timed_loads\": %d, \"recalibrations\": %d, \"seconds\": %.3f"
              vlabel nlabel retries run.Cq_core.Hardware.timed_loads
              run.Cq_core.Hardware.recalibrations dt
          in
          (match row with
          | `Learned ((report : Cq_core.Learn.report), identical) ->
              out
                "        { %s, \"learned\": true, \"states\": %d, \
                 \"identical_to_quiet\": %b, \"vote_runs\": %d, \
                 \"transient_flips\": %d, \"retry_attempts\": %d }"
                common report.Cq_core.Learn.states identical
                report.Cq_core.Learn.vote_runs
                report.Cq_core.Learn.transient_flips
                report.Cq_core.Learn.retry_attempts
          | `Failed reason ->
              out
                "        { %s, \"learned\": false, \"reason\": %S }" common
                reason);
          out "%s\n" (if i = List.length rows - 1 then "" else ","))
        rows;
      out "      ] }%s\n"
        (if ti = List.length all_rows - 1 then "" else ","))
    all_rows;
  out "  ]\n}\n";
  Cq_util.Atomic_file.write ~path:"BENCH_noise.json" (Buffer.contents buf);
  Printf.printf
    "\n(wrote BENCH_noise.json; Skylake L2 %s)\n%!"
    (if full then "included" else "skipped, use --full")

(* ----------------------------------------------------------------------- *)
(* Recovery: durable sessions — snapshot overhead and crash/resume cost     *)
(* ----------------------------------------------------------------------- *)

(* Minimal tolerant scan for ["field": <int>] in a hand-emitted JSON file.
   Prior BENCH_*.json may be missing, truncated by a crashed bench, or from
   an older schema; any of those must read as [None], never abort the run. *)
let json_int_field json field =
  try
    let needle = Printf.sprintf "\"%s\":" field in
    let nlen = String.length needle in
    let len = String.length json in
    let rec find i =
      if i + nlen > len then None
      else if String.sub json i nlen = needle then begin
        let j = ref (i + nlen) in
        while !j < len && json.[!j] = ' ' do incr j done;
        let k = ref !j in
        while
          !k < len
          && (match json.[!k] with '0' .. '9' | '-' -> true | _ -> false)
        do
          incr k
        done;
        if !k > !j then int_of_string_opt (String.sub json !j (!k - !j))
        else None
      end
      else find (i + 1)
    in
    find 0
  with _ -> None

(* Durability must be near-free and resuming must beat starting over.
   Learn Haswell L1 (quiet) three ways — plain, with snapshotting enabled,
   and killed mid-run by a query budget then resumed from the snapshot —
   and compare timed loads.  The resumed automaton must be identical to the
   baseline's.  Results land in BENCH_recovery.json (atomically); a prior
   file is read tolerantly for a trend line. *)
let recovery () =
  header
    "Recovery: snapshot overhead and crash/resume cost (durable sessions)";
  let model = Cq_hwsim.Cpu_model.haswell in
  let learn ?snapshot ?resume ?query_budget () =
    let machine =
      Cq_hwsim.Machine.create ~noise:Cq_hwsim.Machine.quiet_noise model
    in
    let t0 = Cq_util.Clock.mono () in
    let run =
      Cq_core.Hardware.learn_set ~check_hits:false ?snapshot ?resume
        ?query_budget machine Cq_hwsim.Cpu_model.L1
    in
    (run, Cq_util.Clock.mono () -. t0)
  in
  let report_of label (run : Cq_core.Hardware.run) =
    match run.Cq_core.Hardware.outcome with
    | Cq_core.Hardware.Learned { report; _ } -> report
    | Cq_core.Hardware.Partial { failure; _ } ->
        failwith
          (Fmt.str "recovery bench: %s run partial: %a" label
             Cq_core.Learn.pp_failure failure)
    | Cq_core.Hardware.Failed { reason; _ } ->
        failwith ("recovery bench: " ^ label ^ " run failed: " ^ reason)
  in
  (* 1. Baseline: no durability machinery at all. *)
  let base_run, base_dt = learn () in
  let base = report_of "baseline" base_run in
  let base_loads = base_run.Cq_core.Hardware.timed_loads in
  Printf.printf "baseline:     %4d states, %8d timed loads, %5.1fs\n%!"
    base.Cq_core.Learn.states base_loads base_dt;
  (* 2. Snapshots on: written between queries, off the hardware path, so
     the timed-load overhead must stay within 5% (it should be 0). *)
  let snap_path = Filename.temp_file "cq_bench_snap" ".snap" in
  let snap_run, snap_dt =
    (* Default cadence (500 queries / 30 s) — what a real campaign runs. *)
    learn ~snapshot:(Cq_core.Learn.snapshot_policy snap_path) ()
  in
  let snap = report_of "snapshotted" snap_run in
  let snap_loads = snap_run.Cq_core.Hardware.timed_loads in
  let overhead_pct =
    100.0
    *. float_of_int (snap_loads - base_loads)
    /. float_of_int (max 1 base_loads)
  in
  let snap_identical =
    Cq_automata.Mealy.equivalent base.Cq_core.Learn.machine
      snap.Cq_core.Learn.machine
  in
  Printf.printf
    "snapshotting: %4d states, %8d timed loads, %5.1fs  (overhead %+.2f%%%s, \
     automaton %s)\n%!"
    snap.Cq_core.Learn.states snap_loads snap_dt overhead_pct
    (if Float.abs overhead_pct <= 5.0 then "" else "  <-- OVER 5% BUDGET")
    (if snap_identical then "identical" else "DIFFERS <-- MISMATCH");
  (* 3. Crash mid-run: a query budget at half the baseline's hardware
     queries stops the run as Partial Budget_exhausted with a final
     snapshot; resuming replays the answered prefix for free and must
     finish with the identical automaton for less than a fresh run. *)
  let crash_path = Filename.temp_file "cq_bench_crash" ".snap" in
  let budget = max 1 (base.Cq_core.Learn.member_queries / 2) in
  let crash_run, _ =
    learn
      ~snapshot:(Cq_core.Learn.snapshot_policy ~every_queries:100 crash_path)
      ~query_budget:budget ()
  in
  let crash_loads = crash_run.Cq_core.Hardware.timed_loads in
  let resume_from =
    match crash_run.Cq_core.Hardware.outcome with
    | Cq_core.Hardware.Partial
        { failure = Cq_core.Learn.Budget_exhausted _; snapshot = Some s; _ } ->
        s
    | _ ->
        failwith
          "recovery bench: budgeted run did not end as Partial \
           Budget_exhausted with a snapshot"
  in
  Printf.printf "crashed:      (query budget %d) %8d timed loads, snapshot %s\n%!"
    budget crash_loads resume_from;
  let resume_run, resume_dt = learn ~resume:resume_from () in
  let resumed = report_of "resumed" resume_run in
  let resume_loads = resume_run.Cq_core.Hardware.timed_loads in
  let resume_identical =
    Cq_automata.Mealy.equivalent base.Cq_core.Learn.machine
      resumed.Cq_core.Learn.machine
  in
  let saved_pct =
    100.0
    *. float_of_int (base_loads - resume_loads)
    /. float_of_int (max 1 base_loads)
  in
  Printf.printf
    "resumed:      %4d states, %8d timed loads, %5.1fs  (%.1f%% of a fresh \
     run's loads saved, automaton %s)\n%!"
    resumed.Cq_core.Learn.states resume_loads resume_dt saved_pct
    (if resume_identical then "identical" else "DIFFERS <-- MISMATCH");
  (* Trend line against the previous bench run, if one left a readable file. *)
  (match Cq_util.Atomic_file.read_opt ~path:"BENCH_recovery.json" with
  | None -> ()
  | Some prior -> (
      match json_int_field prior "resume_timed_loads" with
      | Some prev ->
          Printf.printf "previous resume cost: %d timed loads (now %d)\n%!"
            prev resume_loads
      | None ->
          Printf.printf
            "(prior BENCH_recovery.json unreadable or partial -- ignored)\n%!"));
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n  \"target\": { \"cpu\": %S, \"level\": \"L1\" },\n"
    model.Cq_hwsim.Cpu_model.name;
  out
    "  \"baseline\": { \"states\": %d, \"timed_loads\": %d, \"seconds\": %.3f \
     },\n"
    base.Cq_core.Learn.states base_loads base_dt;
  out
    "  \"snapshotting\": { \"states\": %d, \"timed_loads\": %d, \"seconds\": \
     %.3f,\n\
    \    \"overhead_pct\": %.3f, \"within_budget\": %b, \"identical\": %b },\n"
    snap.Cq_core.Learn.states snap_loads snap_dt overhead_pct
    (Float.abs overhead_pct <= 5.0)
    snap_identical;
  out "  \"crash\": { \"query_budget\": %d, \"timed_loads\": %d },\n" budget
    crash_loads;
  out
    "  \"resume\": { \"states\": %d, \"resume_timed_loads\": %d, \"seconds\": \
     %.3f,\n\
    \    \"loads_saved_pct\": %.3f, \"identical\": %b }\n}\n"
    resumed.Cq_core.Learn.states resume_loads resume_dt saved_pct
    resume_identical;
  Cq_util.Atomic_file.write ~path:"BENCH_recovery.json" (Buffer.contents buf);
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    [ snap_path; crash_path ];
  Printf.printf "\n(wrote BENCH_recovery.json)\n%!";
  if not (snap_identical && resume_identical) then
    failwith "recovery bench: learned automata diverged from the baseline"

(* ----------------------------------------------------------------------- *)
(* Static analysis: what rejecting before expansion saves                    *)
(* ----------------------------------------------------------------------- *)

(* The point of Mbl_check as a server-side admission filter: its cost is
   O(|AST|) while the expansion it predicts is O(cardinality * length).
   Measured on programs whose cardinality spans five orders of magnitude,
   including one the expander must build 16^4 queries for before a naive
   bound check could reject it. *)
let analysis () =
  header "Static analysis: Mbl_check admission vs. full expansion";
  let programs =
    [
      ("@ X _?", 8, 1 lsl 20);
      ("@ X? X?", 8, 1 lsl 20);
      ("_ _", 16, 1 lsl 20);
      ("_ _ _", 16, 1 lsl 20);
      ("_ _ _ _", 16, 1 lsl 20) (* 65536 queries: expansion hurts *);
      ("(_)3 (_)2", 16, 16) (* rejected: over budget *);
    ]
  in
  Printf.printf "%-14s %9s | %12s | %12s | %s\n%!" "program" "queries"
    "check" "expand" "speedup";
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n  \"programs\": [\n";
  List.iteri
    (fun i (input, assoc, max_queries) ->
      let verdict, check_dt =
        Cq_util.Clock.time (fun () ->
            Cq_analysis.Mbl_check.check_string ~max_queries ~assoc input)
      in
      let expand_dt =
        match
          Cq_util.Clock.time (fun () ->
              match Cq_mbl.Expand.expand_string ~max_queries ~assoc input with
              | _ -> ()
              | exception Cq_mbl.Expand.Expansion_error _ -> ())
        with
        | (), dt -> dt
      in
      let cardinality =
        match verdict with
        | Ok s -> string_of_int s.Cq_analysis.Mbl_check.cardinality
        | Error _ -> "rejected"
      in
      Printf.printf "%-14s %9s | %9.1f us | %9.1f us | %6.0fx\n%!" input
        cardinality (1e6 *. check_dt) (1e6 *. expand_dt)
        (expand_dt /. Float.max check_dt 1e-9);
      Printf.ksprintf (Buffer.add_string buf)
        "    { \"program\": %S, \"queries\": %S, \"check_seconds\": %.9f, \
         \"expand_seconds\": %.9f }%s\n"
        input cardinality check_dt expand_dt
        (if i = List.length programs - 1 then "" else ","))
    programs;
  Buffer.add_string buf "  ]\n}\n";
  Cq_util.Atomic_file.write ~path:"BENCH_analysis.json" (Buffer.contents buf);
  Printf.printf "\n(wrote BENCH_analysis.json)\n%!"

(* ----------------------------------------------------------------------- *)
(* Service layer: cachequeryd under concurrent clients                       *)
(* ----------------------------------------------------------------------- *)

(* Daemon state dirs are scratch: sockets and per-session snapshots that
   only matter while the bench runs.  Remove them afterwards so repeated
   runs and CI checkouts stay clean. *)
let rm_scratch_dir dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

(* An in-process daemon serving N concurrent clients: membership-query
   latency percentiles and request throughput, then one full learn per
   client running concurrently — each result must be byte-identical to a
   solo (daemon-less) learn of the same policy, or the bench fails. *)
let service () =
  header "Service layer: cachequeryd under concurrent clients";
  let module Server = Cq_service.Server in
  let module Client = Cq_service.Client in
  let module Json = Cq_service.Json in
  let clients = 4 in
  let queries_per_client = 250 in
  let state_dir = "bench-service-state" in
  (try Unix.mkdir state_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let socket = Filename.concat state_dir "bench.sock" in
  let cfg = Server.config ~workers:clients ~state_dir socket in
  let server = Server.create cfg in
  Server.start server;
  Fun.protect ~finally:(fun () ->
      Server.stop server;
      rm_scratch_dir state_dir)
  @@ fun () ->
  (* --- phase 1: membership-query latency under concurrency --- *)
  let latencies = Array.make clients [||] in
  let t0 = Cq_util.Clock.mono () in
  let run_client i =
    let c = Client.connect_unix socket in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    let sid = Client.create_sim c ~policy:"LRU" ~assoc:2 () in
    let samples = Array.make queries_per_client 0.0 in
    for q = 0 to queries_per_client - 1 do
      let word = [ q mod 3; (q + 1) mod 3; q mod 2 ] in
      let t = Cq_util.Clock.mono () in
      ignore (Client.query_sim c sid word);
      samples.(q) <- Cq_util.Clock.mono () -. t
    done;
    latencies.(i) <- samples
  in
  let threads = List.init clients (fun i -> Thread.create run_client i) in
  List.iter Thread.join threads;
  let wall = Cq_util.Clock.mono () -. t0 in
  let all = Array.concat (Array.to_list latencies) in
  Array.sort compare all;
  let pct p =
    let n = Array.length all in
    all.(min (n - 1) (max 0 (int_of_float (ceil (p /. 100. *. float n)) - 1)))
  in
  let total = clients * queries_per_client in
  let throughput = float total /. wall in
  let p50 = pct 50. and p95 = pct 95. and p99 = pct 99. in
  Printf.printf
    "%d clients x %d queries: %.0f req/s | p50 %.0f us | p95 %.0f us | p99 \
     %.0f us\n%!"
    clients queries_per_client throughput (1e6 *. p50) (1e6 *. p95)
    (1e6 *. p99);
  (* --- phase 2: concurrent learns, checked against solo runs --- *)
  let policies = [| "LRU"; "FIFO"; "PLRU"; "MRU" |] in
  let digest m = Digest.to_hex (Digest.string (Marshal.to_string m [])) in
  let learns = Array.make clients ("", "", "", 0, 0.0) in
  let learn_client i =
    let c = Client.connect_unix socket in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    let policy = policies.(i mod Array.length policies) in
    let sid = Client.create_sim c ~policy ~assoc:4 () in
    Client.learn_start c sid;
    let st = Client.learn_wait c ~timeout_s:300.0 sid in
    let field name =
      match Json.mem_str name st with Some s -> s | None -> "?"
    in
    let queries =
      Option.value ~default:0 (Json.mem_int "member_queries" st)
    in
    let seconds =
      match Json.member "seconds" st with
      | Some f -> Option.value ~default:0.0 (Json.to_float f)
      | None -> 0.0
    in
    learns.(i) <- (policy, field "state", field "digest", queries, seconds)
  in
  let t1 = Cq_util.Clock.mono () in
  let threads = List.init clients (fun i -> Thread.create learn_client i) in
  List.iter Thread.join threads;
  let learn_wall = Cq_util.Clock.mono () -. t1 in
  let buf = Buffer.create 512 in
  Printf.ksprintf (Buffer.add_string buf)
    "{\n  \"clients\": %d,\n  \"requests\": %d,\n  \"wall_seconds\": %.6f,\n\
    \  \"throughput_rps\": %.1f,\n\
    \  \"latency_seconds\": { \"p50\": %.9f, \"p95\": %.9f, \"p99\": %.9f },\n\
    \  \"learn_wall_seconds\": %.3f,\n  \"learns\": [\n"
    clients total wall throughput p50 p95 p99 learn_wall;
  Array.iteri
    (fun i (policy, state, dgst, queries, seconds) ->
      let solo =
        let p = Cq_policy.Zoo.make_exn ~name:policy ~assoc:4 in
        let r = Cq_core.Learn.learn_simulated ~identify:false p in
        digest r.Cq_core.Learn.machine
      in
      let matches = state = "done" && dgst = solo in
      Printf.printf "  %-5s %-6s  %6d queries  %6.2f s  solo-identical: %b\n%!"
        policy state queries seconds matches;
      Printf.ksprintf (Buffer.add_string buf)
        "    { \"policy\": %S, \"state\": %S, \"digest\": %S, \"queries\": \
         %d, \"seconds\": %.3f, \"matches_solo\": %b }%s\n"
        policy state dgst queries seconds matches
        (if i = clients - 1 then "" else ",");
      if not matches then
        failwith
          (Printf.sprintf
             "service bench: %s learned under concurrency diverged from solo"
             policy))
    learns;
  Buffer.add_string buf "  ]\n}\n";
  Cq_util.Atomic_file.write ~path:"BENCH_service.json" (Buffer.contents buf);
  Printf.printf "\n(wrote BENCH_service.json)\n%!"

(* ----------------------------------------------------------------------- *)
(* Chaos: seeded fault schedules x concurrent resilient clients             *)
(* ----------------------------------------------------------------------- *)

(* The chaos matrix: boot an in-process daemon under a seeded fault
   schedule, drive it with concurrent retry-enabled clients, and hold the
   resilience layer to its contract — the daemon never crashes, client
   retry counts stay bounded, and every learned automaton is
   byte-identical to the quiet run's.  Schedules are deterministic
   (registry seed + site-local PRNG streams), so a failing cell replays
   exactly from its spec string. *)
let chaos () =
  header "Chaos: seeded fault schedules x concurrent resilient clients";
  let module Server = Cq_service.Server in
  let module Client = Cq_service.Client in
  let module Json = Cq_service.Json in
  let module Faults = Cq_util.Faults in
  let policies = [| "LRU"; "FIFO"; "PLRU" |] in
  let assoc = 4 in
  let n_clients = Array.length policies in
  let digest m = Digest.to_hex (Digest.string (Marshal.to_string m [])) in
  (* The quiet reference: solo daemon-less learns, one per policy. *)
  let solo =
    Array.map
      (fun policy ->
        let p = Cq_policy.Zoo.make_exn ~name:policy ~assoc in
        let r = Cq_core.Learn.learn_simulated ~identify:false p in
        digest r.Cq_core.Learn.machine)
      policies
  in
  let scenarios =
    [
      ("quiet", "");
      ("worker-kill", "service.worker.kill:reach=60");
      ("torn-frames", "frame.write.torn:every=9,limit=3");
      ("read-stall", "frame.read.stall:every=10,limit=6");
      ( "snapshot-enospc",
        "atomic_file.write:nth=2,limit=1;atomic_file.fsync:nth=5,limit=1" );
      ( "mixed",
        "service.worker.kill:reach=80;frame.write.torn:every=13,limit=2;atomic_file.write:nth=3,limit=1"
      );
    ]
  in
  let max_restarts = 5 in
  let retry_bound = 50 in
  let rows =
    List.map
      (fun (scenario, spec) ->
        Printf.printf "\nscenario %-16s %s\n%!" scenario
          (if spec = "" then "(no faults)" else spec);
        let reg =
          if spec = "" then None
          else
            match Faults.of_spec ~seed:7 spec with
            | Ok r -> Some r
            | Error msg -> failwith ("chaos: bad fault spec: " ^ msg)
        in
        Faults.set_ambient reg;
        let state_dir = "bench-chaos-" ^ scenario in
        (try Unix.mkdir state_dir 0o755
         with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        let socket = Filename.concat state_dir "chaos.sock" in
        let cfg =
          Server.config ~workers:n_clients ~snapshot_every:25 ~state_dir socket
        in
        let server = Server.create cfg in
        Server.start server;
        let results = Array.make n_clients ("", "", 0, 0, 0) in
        let errs = Array.make n_clients None in
        let run_client i =
          let retry =
            Client.retry ~attempts:8
              ~policy:(Cq_util.Backoff.policy ~base:0.005 ~cap:0.1 ())
              ~seed:i ()
          in
          let c = Client.connect_unix ~retry socket in
          Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
          let policy = policies.(i) in
          let sid =
            Client.create_sim c ~policy ~assoc ~name:(scenario ^ "-" ^ policy)
              ()
          in
          Client.learn_start c sid;
          (* A faulted learn lands in [failed]/[interrupted] with a
             snapshot; restart it with resume until done (bounded). *)
          let rec finish restarts =
            let st = Client.learn_wait c ~timeout_s:120.0 sid in
            match Json.mem_str "state" st with
            | Some "done" -> (st, restarts)
            | Some ("failed" | "interrupted") when restarts < max_restarts ->
                Client.learn_start c ~resume:true sid;
                finish (restarts + 1)
            | st_name ->
                failwith
                  (Printf.sprintf
                     "chaos %s/%s: state %s after %d restarts (not done)"
                     scenario policy
                     (Option.value ~default:"?" st_name)
                     restarts)
          in
          let st, restarts = finish 0 in
          let dgst = Option.value ~default:"?" (Json.mem_str "digest" st) in
          results.(i) <-
            (policy, dgst, restarts, Client.reconnects c,
             Client.request_retries c)
        in
        let run i = try run_client i with e -> errs.(i) <- Some e in
        let threads = List.init n_clients (fun i -> Thread.create run i) in
        List.iter Thread.join threads;
        let fault_fires =
          match reg with None -> 0 | Some r -> Faults.total_fires r
        in
        (* Disarm before the liveness probe and the final snapshot writes:
           the scenario's schedule applies to the workload only. *)
        Faults.set_ambient None;
        let alive =
          match Client.connect_unix socket with
          | exception _ -> false
          | c ->
              Fun.protect
                ~finally:(fun () -> Client.close c)
                (fun () ->
                  match Client.health c with
                  | h -> Json.mem_str "status" h <> None
                  | exception _ -> false)
        in
        Server.stop server;
        Array.iteri
          (fun i err ->
            match err with
            | Some e ->
                failwith
                  (Printf.sprintf "chaos %s: client %d died: %s" scenario i
                     (Printexc.to_string e))
            | None -> ())
          errs;
        if not alive then
          failwith
            (Printf.sprintf "chaos %s: daemon unresponsive after fault run"
               scenario);
        Array.iteri
          (fun i (policy, dgst, restarts, reconnects, retries) ->
            let identical = dgst = solo.(i) in
            Printf.printf
              "  %-5s done  restarts=%d reconnects=%d retries=%d  \
               solo-identical: %b\n\
               %!"
              policy restarts reconnects retries identical;
            if not identical then
              failwith
                (Printf.sprintf
                   "chaos %s/%s: automaton diverged from the quiet run (%s vs %s)"
                   scenario policy dgst solo.(i));
            if reconnects + retries > retry_bound then
              failwith
                (Printf.sprintf
                   "chaos %s/%s: unbounded retries (%d reconnects + %d \
                    retries > %d)"
                   scenario policy reconnects retries retry_bound))
          results;
        Printf.printf "  (daemon alive, %d fault firings)\n%!" fault_fires;
        (* Only a passing scenario cleans up: a failed one leaves its
           state dir behind for the post-mortem. *)
        rm_scratch_dir state_dir;
        (scenario, spec, fault_fires, Array.to_list results))
      scenarios
  in
  Faults.set_ambient None;
  let buf = Buffer.create 2048 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n  \"clients\": %d,\n  \"scenarios\": [\n" n_clients;
  List.iteri
    (fun si (scenario, spec, fault_fires, results) ->
      out
        "    { \"name\": %S, \"spec\": %S, \"fault_fires\": %d, \
         \"daemon_crashes\": 0,\n\
        \      \"learns\": [\n"
        scenario spec fault_fires;
      List.iteri
        (fun i (policy, dgst, restarts, reconnects, retries) ->
          out
            "        { \"policy\": %S, \"digest\": %S, \"restarts\": %d, \
             \"reconnects\": %d, \"request_retries\": %d, \
             \"identical_to_quiet\": true }%s\n"
            policy dgst restarts reconnects retries
            (if i = List.length results - 1 then "" else ","))
        results;
      out "      ] }%s\n" (if si = List.length rows - 1 then "" else ","))
    rows;
  out "  ]\n}\n";
  Cq_util.Atomic_file.write ~path:"BENCH_chaos.json" (Buffer.contents buf);
  Printf.printf "\n(wrote BENCH_chaos.json)\n%!"

(* ----------------------------------------------------------------------- *)
(* Assoc scaling: symmetry-quotient learning vs direct                       *)
(* ----------------------------------------------------------------------- *)

(* The associativity wall (§7 of the paper stops at 8 ways): learn the
   scaling targets from software-simulated caches with the symmetry
   quotient on and off, and record queries + wall-clock per associativity
   in BENCH_assoc.json.  The headline: PLRU at 12 ways with the quotient
   on must fit inside the direct (quotient-off) PLRU-8 query budget.

   Controls: LRU is fully symmetric (maximal collapse, but n! states caps
   its curve early) and FIFO has no verified symmetry (the quotient must
   degrade to the identity, same queries modulo the probe cost).  New1's
   state count explodes (~58k at 8 ways), so its curve stops where the
   hypothesis, not the query budget, is the wall.  Whenever both runs of
   a config learn, their automata must be identical — a quotient that
   changes the learned machine is unsound, and [--smoke] (the CI gate)
   fails the process on it. *)
let assoc_bench ~full ~smoke () =
  header
    "Assoc scaling: symmetry-quotient learning vs direct (Polca + L*, \
     Wp-method depth 1)";
  let plans =
    (* (policy, assoc, run quotient-off too, deadline seconds) *)
    if smoke then
      [
        ("LRU", 4, true, None); ("FIFO", 4, true, None);
        ("PLRU", 4, true, None); ("New1", 4, true, None);
      ]
    else
      [
        ("LRU", 4, true, None); ("LRU", 6, true, None);
        ("FIFO", 8, true, None); ("FIFO", 12, true, None);
        ("FIFO", 16, true, None);
        ("New1", 4, true, None);
        ("PLRU", 4, true, None); ("PLRU", 8, true, None);
        ("PLRU", 12, full, None);
      ]
      @ (if full then
           [
             (* New1 has no reachable line symmetry, so its curve is pure
                quotient overhead past assoc 4 — full-sweep only. *)
             ("New1", 6, true, None);
             ("PLRU", 16, false, Some 1800.); ("New1", 8, false, Some 1800.);
           ]
         else [])
  in
  let learn ~quotient ?deadline policy =
    let outcome =
      Cq_core.Learn.run_simulated ~identify:false ~quotient
        ~deadline:(Cq_util.Clock.deadline_of deadline) policy
    in
    outcome
  in
  Printf.printf "%-8s %5s | %10s %8s | %10s %8s | %8s %9s %5s\n%!" "Policy"
    "assoc" "direct q" "time" "quot q" "time" "collapse" "st/reps" "same";
  let rows =
    List.map
      (fun (name, assoc, run_off, deadline) ->
        let policy = Cq_policy.Zoo.make_exn ~name ~assoc in
        let off = if run_off then Some (learn ~quotient:false ?deadline policy) else None in
        let on = learn ~quotient:true ?deadline policy in
        let queries = function
          | Cq_core.Learn.Complete r -> string_of_int r.Cq_core.Learn.member_queries
          | Cq_core.Learn.Partial _ -> "-"
        in
        let time = function
          | Cq_core.Learn.Complete r -> Cq_util.Clock.to_string r.Cq_core.Learn.seconds
          | Cq_core.Learn.Partial p -> Fmt.str "(%a)" Cq_core.Learn.pp_failure p.Cq_core.Learn.failure
        in
        let identical =
          match (off, on) with
          | Some (Cq_core.Learn.Complete a), Cq_core.Learn.Complete b ->
              Some
                (Cq_automata.Mealy.equivalent a.Cq_core.Learn.machine
                   b.Cq_core.Learn.machine)
          | _ -> None
        in
        let state_collapse =
          match on with
          | Cq_core.Learn.Complete { Cq_core.Learn.quotient = Some q; _ } ->
              Printf.sprintf "%d/%d" q.Cq_learner.Quotient.states
                q.Cq_learner.Quotient.reps
          | _ -> "-"
        in
        let collapse =
          match (off, on) with
          | Some (Cq_core.Learn.Complete a), Cq_core.Learn.Complete b ->
              Printf.sprintf "%.2fx"
                (float_of_int a.Cq_core.Learn.member_queries
                /. float_of_int (max 1 b.Cq_core.Learn.member_queries))
          | _ -> "-"
        in
        Printf.printf "%-8s %5d | %10s %8s | %10s %8s | %8s %9s %5s\n%!" name
          assoc
          (match off with Some o -> queries o | None -> "(skip)")
          (match off with Some o -> time o | None -> "-")
          (queries on) (time on) collapse state_collapse
          (match identical with
          | Some true -> "yes"
          | Some false -> "NO <-- MISMATCH"
          | None -> "-");
        (name, assoc, off, on, identical))
      plans
  in
  (* The headline budget check: quotient-on PLRU-12 vs direct PLRU-8. *)
  let find_complete name assoc pick =
    List.find_map
      (fun (n, a, off, on, _) ->
        if n = name && a = assoc then
          match pick off on with
          | Some (Cq_core.Learn.Complete r) -> Some r
          | _ -> None
        else None)
      rows
  in
  let budget =
    match
      ( find_complete "PLRU" 12 (fun _off on -> Some on),
        find_complete "PLRU" 8 (fun off _on -> off) )
    with
    | Some p12, Some p8 ->
        let within =
          p12.Cq_core.Learn.member_queries <= p8.Cq_core.Learn.member_queries
        in
        Printf.printf
          "\nPLRU-12 (quotient) vs PLRU-8 (direct): %d vs %d membership \
           queries -> %s\n%!"
          p12.Cq_core.Learn.member_queries p8.Cq_core.Learn.member_queries
          (if within then "within the assoc-8 budget"
           else "OVER BUDGET <-- the quotient is not paying for itself");
        Some (p12.Cq_core.Learn.member_queries, p8.Cq_core.Learn.member_queries, within)
    | _ -> None
  in
  (* The other half of the tentpole: hypothesis evaluation during
     conformance testing is compiled to flattened tables with
     dictionary-coded outputs ([Mealy.compile] / [Mealy.encode_trace] /
     [Mealy.agrees_trace]) instead of re-walking the per-state arrays,
     allocating an output list per word and comparing it with
     polymorphic equality ([Mealy.run]).  Each recorded trace is encoded
     once and evaluated [repeats] times, the shape counterexample
     re-processing and conformance replay produce: the same (word,
     outputs) pair is checked against every refined hypothesis.
     Differential micro-bench: same words, same corrupted-trace mix,
     verdicts must be identical, and the compiled path must clear 5x. *)
  let compiled_eval =
    let m =
      Cq_policy.Policy.to_mealy (Cq_policy.Zoo.make_exn ~name:"PLRU" ~assoc:8)
    in
    let c = Cq_automata.Mealy.compile m in
    let k = Cq_automata.Mealy.n_inputs m in
    let prng = Cq_util.Prng.of_int 0x5eed in
    let words =
      Array.init 2000 (fun i ->
          let w = List.init 64 (fun _ -> Cq_util.Prng.int prng k) in
          let exp = Cq_automata.Mealy.run m w in
          (* Half the traces are corrupted mid-word, so both evaluators
             exercise their reject paths too. *)
          let exp =
            if i mod 2 = 0 then exp
            else
              List.mapi
                (fun j o -> if j = 32 then (match o with Some l -> Some (l + 1) | None -> Some 0) else o)
                exp
          in
          (w, exp))
    in
    (* Pre-encoding happens once per trace, outside the timed loop: the
       evaluators below model replaying a fixed recorded trace against
       successive hypothesis refinements. *)
    let traces =
      Array.map (fun (w, exp) -> Cq_automata.Mealy.encode_trace c w exp) words
    in
    let repeats = 50 in
    let run_verdicts = Array.map (fun (w, exp) -> Cq_automata.Mealy.run m w = exp) words in
    let agree_verdicts = Array.map (fun tr -> Cq_automata.Mealy.agrees_trace c tr) traces in
    let identical = run_verdicts = agree_verdicts in
    let (), run_s =
      Cq_util.Clock.time (fun () ->
          for _ = 1 to repeats do
            Array.iter (fun (w, exp) -> ignore (Cq_automata.Mealy.run m w = exp)) words
          done)
    in
    let (), agrees_s =
      Cq_util.Clock.time (fun () ->
          for _ = 1 to repeats do
            Array.iter (fun tr -> ignore (Cq_automata.Mealy.agrees_trace c tr)) traces
          done)
    in
    let speedup = run_s /. Float.max 1e-9 agrees_s in
    Printf.printf
      "\ncompiled evaluation (PLRU-8 truth, 2000 words x 64 symbols x %d \
       reps):\n  Mealy.run %.4f s, Mealy.agrees_trace %.4f s -> %.1fx, \
       verdicts identical: %b\n%!"
      repeats run_s agrees_s speedup identical;
    if not identical then
      failwith "assoc bench: compiled evaluator verdicts differ from Mealy.run";
    if (not smoke) && speedup < 5.0 then
      failwith
        (Printf.sprintf
           "assoc bench: compiled evaluator speedup %.1fx below the 5x bar"
           speedup);
    (run_s, agrees_s, speedup, identical)
  in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n  \"mode\": %S,\n"
    (if smoke then "smoke" else if full then "full" else "default");
  (let run_s, agrees_s, speedup, identical = compiled_eval in
   out
     "  \"compiled_eval\": { \"run_seconds\": %.6f, \"agrees_seconds\": \
      %.6f, \"speedup\": %.2f, \"identical_verdicts\": %b },\n"
     run_s agrees_s speedup identical);
  (match budget with
  | Some (q12, q8, within) ->
      out
        "  \"plru12_quotient_vs_plru8_direct\": { \"plru12_queries\": %d, \
         \"plru8_queries\": %d, \"within_budget\": %b },\n"
        q12 q8 within
  | None -> ());
  out "  \"results\": [\n";
  let run_json = function
    | Cq_core.Learn.Complete (r : Cq_core.Learn.report) ->
        let quot =
          match r.Cq_core.Learn.quotient with
          | Some q ->
              Printf.sprintf
                ", \"quotient_reps\": %d, \"quotient_states\": %d, \
                 \"quotient_aliases\": %d, \"alias_queries\": %d, \
                 \"state_collapse\": %.2f"
                q.Cq_learner.Quotient.reps q.Cq_learner.Quotient.states
                q.Cq_learner.Quotient.aliases
                q.Cq_learner.Quotient.alias_queries
                (Cq_learner.Quotient.collapse q)
          | None -> ""
        in
        Printf.sprintf
          "{ \"learned\": true, \"states\": %d, \"member_queries\": %d, \
           \"member_symbols\": %d, \"cache_queries\": %d, \
           \"cache_accesses\": %d, \"seconds\": %.6f%s }"
          r.Cq_core.Learn.states r.Cq_core.Learn.member_queries
          r.Cq_core.Learn.member_symbols r.Cq_core.Learn.cache_queries
          r.Cq_core.Learn.cache_accesses r.Cq_core.Learn.seconds quot
    | Cq_core.Learn.Partial p ->
        Printf.sprintf "{ \"learned\": false, \"reason\": %S }"
          (Fmt.str "%a" Cq_core.Learn.pp_failure p.Cq_core.Learn.failure)
  in
  List.iteri
    (fun i (name, assoc, off, on, identical) ->
      out
        "    { \"policy\": %S, \"assoc\": %d,\n      \"quotient\": %s,\n\
        \      \"direct\": %s,\n      \"identical\": %s }%s\n"
        name assoc (run_json on)
        (match off with Some o -> run_json o | None -> "null")
        (match identical with
        | Some b -> string_of_bool b
        | None -> "null")
        (if i = List.length rows - 1 then "" else ","))
    rows;
  out "  ]\n}\n";
  Cq_util.Atomic_file.write ~path:"BENCH_assoc.json" (Buffer.contents buf);
  Printf.printf "\n(wrote BENCH_assoc.json)\n%!";
  let mismatches =
    List.filter_map
      (fun (name, assoc, _, _, identical) ->
        if identical = Some false then Some (Printf.sprintf "%s-%d" name assoc)
        else None)
      rows
  in
  if mismatches <> [] then
    failwith
      ("assoc bench: quotient changed the learned machine for "
      ^ String.concat ", " mismatches);
  if smoke then
    match budget with
    | Some (_, _, false) ->
        failwith "assoc bench: PLRU-12 quotient run exceeded the PLRU-8 budget"
    | _ -> ()

(* ----------------------------------------------------------------------- *)
(* Bechamel micro-benchmarks: one per experiment family                      *)
(* ----------------------------------------------------------------------- *)

let micro () =
  header "Micro-benchmarks (bechamel): core operations of each experiment";
  let open Bechamel in
  let new1 = Cq_policy.Zoo.make_exn ~name:"New1" ~assoc:4 in
  let new1_mealy = Cq_policy.Policy.to_mealy new1 in
  let word = [ 4; 0; 4; 2; 4; 1; 0; 4; 3; 4 ] in
  let sim_oracle = Cq_cache.Oracle.of_policy new1 in
  let polca = Cq_core.Polca.create ~check_hits:true sim_oracle in
  let machine =
    Cq_hwsim.Machine.create ~noise:Cq_hwsim.Machine.quiet_noise
      Cq_hwsim.Cpu_model.skylake
  in
  let prog_new1 =
    {
      Cq_synth.Rules.init = [| 3; 3; 3; 0 |];
      promote =
        { p_self = [ (Cq_synth.Rules.Always, Cq_synth.Rules.Const 0) ]; p_others = None };
      evict = Cq_synth.Rules.First_with_age 3;
      insert = { i_self = Cq_synth.Rules.Const 1; i_others = None };
      normalize =
        {
          n_touched = Cq_synth.Rules.N_aging { except_touched = true };
          n_pre_miss = Cq_synth.Rules.N_nop;
        };
    }
  in
  let tests =
    [
      Test.make ~name:"t2-mealy-run-new1"
        (Staged.stage (fun () -> Cq_automata.Mealy.run new1_mealy word));
      Test.make ~name:"t2-polca-query"
        (Staged.stage (fun () -> Cq_core.Polca.run polca word));
      Test.make ~name:"t4-hwsim-load"
        (Staged.stage
           (let addr = ref 0 in
            fun () ->
              addr := (!addr + 4096) land 0xFFFFFF;
              Cq_hwsim.Machine.load machine !addr));
      Test.make ~name:"t4-mbl-expand"
        (Staged.stage (fun () -> Cq_mbl.Expand.expand_string ~assoc:8 "@ X _?"));
      Test.make ~name:"t5-synth-check"
        (Staged.stage (fun () ->
             Cq_synth.Search.check_exact new1_mealy prog_new1));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] test in
      let results = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "  %-24s %14.1f ns/run\n%!" name est
          | _ -> Printf.printf "  %-24s (no estimate)\n%!" name)
        results)
    (List.map (fun t -> Test.make_grouped ~name:"micro" [ t ]) tests)

(* ----------------------------------------------------------------------- *)
(* Workload engine: hit rates vs Belady-OPT, compiled replay throughput     *)
(* ----------------------------------------------------------------------- *)

(* The workload engine closes the loop from learned automata back to
   traffic: replay spec-described traces through the zoo (hit rates vs
   the Belady-OPT offline bound), then hold the compiled replayer to its
   contract — bit-for-bit agreement with the policy-instance path on a
   learned PLRU-8 machine at >= 1M accesses/sec — and finally drive the
   same evaluation through the daemon's replay verb, which must report
   the same numbers.  Results land in BENCH_workload.json (atomically); a
   prior file is read tolerantly for a throughput trend line. *)
let workload () =
  header
    "Workload engine: hit rates vs Belady-OPT, compiled replay throughput";
  let module W = Cq_workload in
  let assoc = 8 in
  let policy_names =
    [ "LRU"; "FIFO"; "PLRU"; "MRU"; "LIP"; "BIP"; "SRRIP-HP" ]
  in
  let specs =
    [
      "zipf:n=64,alpha=1.2,len=200000,seed=1";
      "uniform:n=16,len=200000,seed=2";
      "seq:n=12,len=200000";
      "stride:n=24,stride=3,len=200000";
      "anti:len=200000";
    ]
  in
  let traces = List.map (W.Trace.of_spec_exn ~assoc) specs in
  let subjects =
    List.map
      (fun name -> (name, Cq_policy.Zoo.make_exn ~name ~assoc))
      policy_names
  in
  (* --- phase 1: hit-rate table vs Belady-OPT --- *)
  let rows = W.Eval.policies subjects traces in
  W.Eval.pp_table Format.std_formatter rows;
  (* --- phase 2: a machine actually produced by the learner --- *)
  Printf.printf "\nlearning PLRU at assoc %d...\n%!" assoc;
  let plru = Cq_policy.Zoo.make_exn ~name:"PLRU" ~assoc in
  let report = Cq_core.Learn.learn_simulated ~identify:false plru in
  let compiled = Cq_automata.Mealy.compile report.Cq_core.Learn.machine in
  let states = Cq_automata.Mealy.compiled_n_states compiled in
  Printf.printf "learned %d states in %.2f s\n%!" states
    report.Cq_core.Learn.seconds;
  let streams_identical =
    List.for_all
      (fun (tr : W.Trace.t) ->
        let o_p = W.Replay.policy plru tr.W.Trace.blocks in
        let o_c = W.Replay.compiled compiled tr.W.Trace.blocks in
        Bytes.equal o_p.W.Replay.stream o_c.W.Replay.stream)
      traces
  in
  Printf.printf
    "learned-machine streams identical to policy instances: %b\n%!"
    streams_identical;
  if not streams_identical then
    failwith
      "workload bench: learned PLRU-8 replay diverged from the policy \
       instance";
  (* --- phase 3: compiled throughput (floor: 1M accesses/sec) --- *)
  let big_spec = "zipf:n=64,alpha=1.2,len=2000000,seed=9" in
  let big = W.Trace.of_spec_exn ~assoc big_spec in
  let blocks = big.W.Trace.blocks in
  ignore (W.Replay.compiled compiled blocks) (* warm-up *);
  let t0 = Cq_util.Clock.mono () in
  let o_fast = W.Replay.compiled compiled blocks in
  let dt = Cq_util.Clock.mono () -. t0 in
  let t1 = Cq_util.Clock.mono () in
  let o_inst = W.Replay.policy plru blocks in
  let dt_inst = Cq_util.Clock.mono () -. t1 in
  if not (Bytes.equal o_fast.W.Replay.stream o_inst.W.Replay.stream) then
    failwith "workload bench: throughput-run streams diverged";
  let len_f = float_of_int (Array.length blocks) in
  let compiled_aps = len_f /. dt and policy_aps = len_f /. dt_inst in
  Printf.printf
    "compiled replay: %.1fM accesses/s | policy instance: %.1fM/s | \
     speedup %.1fx (%d accesses, %d-state machine)\n%!"
    (compiled_aps /. 1e6) (policy_aps /. 1e6) (compiled_aps /. policy_aps)
    (Array.length blocks) states;
  if compiled_aps < 1_000_000.0 then
    failwith
      (Printf.sprintf
         "workload bench: compiled replay at %.0f accesses/s is below the \
          1M/s floor"
         compiled_aps);
  (* --- phase 4: miss attribution on the learned machine --- *)
  let attr = W.Replay.attribution compiled in
  let attr_trace = List.hd traces in
  ignore (W.Replay.compiled ~attr compiled attr_trace.W.Trace.blocks);
  Printf.printf "\nmiss attribution: learned PLRU-%d on %s\n%!" assoc
    attr_trace.W.Trace.label;
  W.Eval.pp_attribution ~top:5 Format.std_formatter attr;
  (* --- phase 5: the daemon as a load source --- *)
  let module Server = Cq_service.Server in
  let module Client = Cq_service.Client in
  let module Json = Cq_service.Json in
  let state_dir = "bench-workload-state" in
  (try Unix.mkdir state_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let socket = Filename.concat state_dir "bench.sock" in
  let server = Server.create (Server.config ~workers:1 ~state_dir socket) in
  Server.start server;
  let daemon_match =
    Fun.protect ~finally:(fun () ->
        Server.stop server;
        rm_scratch_dir state_dir)
    @@ fun () ->
    let c = Client.connect_unix socket in
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    let d_assoc = 4 in
    let d_spec = "zipf:n=32,alpha=1.2,len=50000,seed=5" in
    let local =
      W.Replay.policy
        (Cq_policy.Zoo.make_exn ~name:"PLRU" ~assoc:d_assoc)
        (W.Trace.of_spec_exn ~assoc:d_assoc d_spec).W.Trace.blocks
    in
    let sid = Client.create_sim c ~policy:"PLRU" ~assoc:d_assoc () in
    let hits_of doc = Option.value ~default:(-1) (Json.mem_int "hits" doc) in
    let before = Client.replay c ~spec:d_spec sid in
    Client.learn_start c sid;
    ignore (Client.learn_wait c ~timeout_s:300.0 sid);
    let after = Client.replay c ~spec:d_spec sid in
    let ok =
      hits_of before = local.W.Replay.hits
      && hits_of after = local.W.Replay.hits
      && Option.value ~default:"?" (Json.mem_str "source" after) = "learned"
    in
    Printf.printf
      "\ndaemon replay (PLRU-%d, %s): policy %d hits, learned %d hits, \
       local %d hits -> match: %b\n%!"
      d_assoc d_spec (hits_of before) (hits_of after) local.W.Replay.hits ok;
    ok
  in
  if not daemon_match then
    failwith "workload bench: daemon replay diverged from local replay";
  (* --- prior-run trend (tolerant of missing/partial files) --- *)
  (match Cq_util.Atomic_file.read_opt ~path:"BENCH_workload.json" with
  | None -> ()
  | Some prior -> (
      match json_int_field prior "compiled_accesses_per_sec" with
      | Some p ->
          Printf.printf
            "\nprior compiled throughput: %d accesses/s -> this run: %.0f\n%!"
            p compiled_aps
      | None ->
          Printf.printf
            "(prior BENCH_workload.json unreadable or partial -- ignored)\n%!"));
  (* --- artifact --- *)
  let buf = Buffer.create 2048 in
  Printf.ksprintf (Buffer.add_string buf)
    "{\n\
    \  \"assoc\": %d,\n\
    \  \"learned_policy\": \"PLRU\",\n\
    \  \"learned_states\": %d,\n\
    \  \"learn_seconds\": %.3f,\n\
    \  \"streams_identical\": %b,\n\
    \  \"throughput_trace\": %S,\n\
    \  \"compiled_accesses_per_sec\": %d,\n\
    \  \"policy_accesses_per_sec\": %d,\n\
    \  \"speedup\": %.2f,\n\
    \  \"daemon_match\": %b,\n\
    \  \"rows\": [\n"
    assoc states report.Cq_core.Learn.seconds streams_identical big_spec
    (int_of_float compiled_aps)
    (int_of_float policy_aps)
    (compiled_aps /. policy_aps)
    daemon_match;
  let n_rows = List.length rows in
  List.iteri
    (fun i (r : W.Eval.row) ->
      Printf.ksprintf (Buffer.add_string buf)
        "    { \"policy\": %S, \"trace\": %S, \"accesses\": %d, \"hits\": \
         %d, \"hit_rate\": %.6f, \"opt_hit_rate\": %.6f }%s\n"
        r.W.Eval.subject r.W.Eval.trace r.W.Eval.accesses r.W.Eval.hits
        r.W.Eval.rate r.W.Eval.opt_rate
        (if i = n_rows - 1 then "" else ","))
    rows;
  Buffer.add_string buf "  ],\n  \"attribution_top\": [\n";
  let top = W.Replay.top_miss_states attr 5 in
  let n_top = List.length top in
  List.iteri
    (fun i (s, m, h) ->
      Printf.ksprintf (Buffer.add_string buf)
        "    { \"state\": %d, \"misses\": %d, \"hits\": %d }%s\n" s m h
        (if i = n_top - 1 then "" else ","))
    top;
  Buffer.add_string buf "  ]\n}\n";
  Cq_util.Atomic_file.write ~path:"BENCH_workload.json" (Buffer.contents buf);
  Printf.printf "\n(wrote BENCH_workload.json)\n%!"

(* ----------------------------------------------------------------------- *)
(* Security analysis: eviction sets, stealthy sequences, leakage            *)
(* ----------------------------------------------------------------------- *)

(* The cq-attack pass over the whole zoo at assoc 4 and 8 plus a
   quotient-learned PLRU-12: eviction-set size, stealthy-sequence
   length, leakage bits and analysis wall-clock per policy.  Gates (the
   process fails): every synthesized sequence must replay byte-for-byte
   through the Replay paths *and* hwsim; the analysis must be
   deterministic; BIP must evict strictly less information than LRU.
   [--smoke] (the CI gate) shrinks the sweep to a machine actually
   learned in simulation (LRU-4). *)
let attack ~smoke () =
  header
    "Security analysis: eviction sets, stealthy sequences, leakage \
     (cq-attack)";
  let module A = Cq_analysis.Attack in
  let module Learn = Cq_core.Learn in
  let zoo assoc =
    List.filter_map
      (fun e ->
        if e.Cq_policy.Zoo.valid_assoc assoc then
          Some (e.Cq_policy.Zoo.name, `Policy (e.Cq_policy.Zoo.make assoc))
        else None)
      Cq_policy.Zoo.entries
  in
  let subjects =
    if smoke then begin
      Printf.printf "smoke: learning LRU-4 in simulation...\n%!";
      let p = Cq_policy.Zoo.make_exn ~name:"LRU" ~assoc:4 in
      let lr = Learn.learn_simulated ~identify:false p in
      [ ("LRU(learned)", `Learned (lr.Learn.machine, p)) ]
    end
    else begin
      Printf.printf "learning PLRU-12 with the symmetry quotient...\n%!";
      let plru12 = Cq_policy.Zoo.make_exn ~name:"PLRU" ~assoc:12 in
      let lr = Learn.learn_simulated ~identify:false ~quotient:true plru12 in
      zoo 4 @ zoo 8
      @ [ ("PLRU-12(learned)", `Learned (lr.Learn.machine, plru12)) ]
    end
  in
  Printf.printf "%-18s %5s %7s | %5s %5s | %8s | %5s %8s %8s | %8s %s\n%!"
    "policy" "assoc" "states" "evset" "evlen" "stealth" "leak" "absorbed"
    "residual" "ms" "verified";
  let rows =
    List.map
      (fun (name, src) ->
        let p, m =
          match src with
          | `Policy p -> (p, Cq_policy.Policy.to_mealy p)
          | `Learned (m, p) -> (p, m)
        in
        let r, dt = Cq_util.Clock.time (fun () -> A.analyze ~name m) in
        if r.A.assoc <= 4 && A.analyze ~name m <> r then
          failwith (name ^ ": analysis is not deterministic");
        (match A.verify p r with
        | Ok () -> ()
        | Error e -> failwith (name ^ ": replay verification failed: " ^ e));
        (match A.verify_hwsim p r with
        | Ok () -> ()
        | Error e -> failwith (name ^ ": hwsim verification failed: " ^ e));
        let stealth_len, stealth_rep =
          match r.A.stealthy with
          | None -> (0, false)
          | Some st ->
              (List.length st.A.setup + List.length st.A.body,
               st.A.repeatable)
        in
        let l = r.A.leakage in
        Printf.printf
          "%-18s %5d %7d | %5d %5d | %7d%s | %5.2f %8d %8.2f | %8.1f ok\n%!"
          name r.A.assoc r.A.states r.A.eviction_set_size r.A.eviction_length
          stealth_len
          (if stealth_rep then "R" else "!")
          l.A.evicted_information l.A.absorbed_noise l.A.residual_information
          (dt *. 1000.0);
        (r, dt, stealth_len, stealth_rep))
      subjects
  in
  (* Ordering gate: BIP's deterministic LIP-biased insertion collapses
     victim intensities that LRU keeps apart. *)
  if not smoke then
    List.iter
      (fun assoc ->
        let bits name =
          let r, _, _, _ =
            List.find (fun (r, _, _, _) -> r.A.name = name && r.A.assoc = assoc) rows
          in
          r.A.leakage.A.evicted_information
        in
        if not (bits "BIP" < bits "LRU") then
          failwith
            (Printf.sprintf
               "attack bench: BIP-%d does not leak less than LRU-%d" assoc
               assoc))
      [ 4; 8 ];
  (* Prior-run trend (tolerant of missing/partial files — first runs have
     no BENCH_attack.json at all). *)
  (match Cq_util.Atomic_file.read_opt ~path:"BENCH_attack.json" with
  | None -> ()
  | Some prior -> (
      match json_int_field prior "max_analysis_ms" with
      | Some p ->
          let worst =
            List.fold_left (fun acc (_, dt, _, _) -> max acc dt) 0.0 rows
          in
          Printf.printf
            "\nprior worst analysis: %d ms -> this run: %.0f ms\n%!" p
            (worst *. 1000.0)
      | None ->
          Printf.printf
            "(prior BENCH_attack.json unreadable or partial -- ignored)\n%!"));
  let buf = Buffer.create 2048 in
  let worst_ms =
    List.fold_left (fun acc (_, dt, _, _) -> max acc (dt *. 1000.0)) 0.0 rows
  in
  Printf.ksprintf (Buffer.add_string buf)
    "{\n\
    \  \"smoke\": %b,\n\
    \  \"verified_all\": true,\n\
    \  \"row_count\": %d,\n\
    \  \"max_analysis_ms\": %d,\n\
    \  \"rows\": [\n"
    smoke (List.length rows)
    (int_of_float (Float.round worst_ms));
  let n = List.length rows in
  List.iteri
    (fun i (r, dt, stealth_len, stealth_rep) ->
      let l = r.A.leakage in
      Printf.ksprintf (Buffer.add_string buf)
        "    { \"policy\": %S, \"assoc\": %d, \"states\": %d, \
         \"eviction_set_size\": %d, \"eviction_length\": %d, \
         \"stealthy_length\": %d, \"stealthy_repeatable\": %b, \
         \"probe_classes\": %d, \"evicted_information\": %.6f, \
         \"absorbed_noise\": %d, \"residual_information\": %.6f, \
         \"analysis_ms\": %.3f, \"verified\": true }%s\n"
        r.A.name r.A.assoc r.A.states r.A.eviction_set_size
        r.A.eviction_length stealth_len stealth_rep l.A.probe_classes
        l.A.evicted_information l.A.absorbed_noise l.A.residual_information
        (dt *. 1000.0)
        (if i = n - 1 then "" else ","))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  Cq_util.Atomic_file.write ~path:"BENCH_attack.json" (Buffer.contents buf);
  Printf.printf "\n(wrote BENCH_attack.json)\n%!"

(* ----------------------------------------------------------------------- *)
(* Driver                                                                    *)
(* ----------------------------------------------------------------------- *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  let smoke = List.mem "--smoke" args in
  let cmds = List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args in
  let cmds = if cmds = [] then [ "all" ] else cmds in
  let run = function
    | "table2" -> table2 ~full ()
    | "table3" -> table3 ()
    | "table4" -> table4 ~full ()
    | "table5" -> table5 ~full ()
    | "figure1" -> figure1 ()
    | "figure5" -> figure5 ()
    | "cost" -> cost ()
    | "leaders" -> leaders ~full ()
    | "ablations" -> ablations ()
    | "engine" -> engine ()
    | "noise" -> noise ~full ()
    | "recovery" -> recovery ()
    | "analysis" -> analysis ()
    | "assoc" -> assoc_bench ~full ~smoke ()
    | "service" -> service ()
    | "chaos" -> chaos ()
    | "workload" -> workload ()
    | "attack" -> attack ~smoke ()
    | "micro" -> micro ()
    | "all" ->
        (* One crashing experiment must not take the rest of the run (or
           its already-written BENCH_*.json files) down with it. *)
        List.iter
          (fun (name, f) ->
            try f ()
            with exn ->
              Printf.printf "\n(%s failed: %s -- continuing)\n%!" name
                (Printexc.to_string exn))
          [
            ("figure1", figure1);
            ("table3", table3);
            ("table2", table2 ~full);
            ("table4", table4 ~full);
            ("table5", table5 ~full);
            ("figure5", figure5);
            ("cost", cost);
            ("leaders", leaders ~full);
            ("ablations", ablations);
            ("engine", engine);
            ("noise", noise ~full);
            ("recovery", recovery);
            ("analysis", analysis);
            ("assoc", assoc_bench ~full ~smoke);
            ("service", service);
            ("chaos", chaos);
            ("workload", workload);
            ("attack", fun () -> attack ~smoke ());
            ("micro", micro);
          ];
        (* Every artifact this bench run (or a previous one) left behind:
           the machine-readable counterpart of the tables above. *)
        let artifacts =
          Sys.readdir "." |> Array.to_list
          |> List.filter (fun f ->
                 String.length f > 6
                 && String.sub f 0 6 = "BENCH_"
                 && Filename.check_suffix f ".json")
          |> List.sort compare
        in
        Printf.printf "\nartifacts:\n";
        List.iter (Printf.printf "  %s\n") artifacts;
        (* Expected artifacts that are absent (first run, or their
           experiment failed above) are named rather than silently
           dropped from the summary. *)
        List.iter
          (fun f ->
            if not (List.mem f artifacts) then
              Printf.printf "  %s (missing -- first run or failed above)\n" f)
          [ "BENCH_attack.json"; "BENCH_workload.json" ];
        Printf.printf "%!"
    | other -> Printf.printf "unknown experiment %S\n%!" other
  in
  List.iter run cmds;
  Printf.printf "\n(done)\n%!"
